package apex

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"beambench/internal/keyhash"
	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/simcost"
	"beambench/internal/watermark"
	"beambench/internal/yarn"
)

// errAttemptStopped signals cooperative shutdown inside one attempt.
var errAttemptStopped = errors.New("apex: attempt stopped")

// _streamChannelBuffer is the buffer-server subscriber queue depth, in
// batches.
const _streamChannelBuffer = 8

// LaunchConfig controls the physical deployment of an application.
type LaunchConfig struct {
	// Parallelism is the partition count per operator, configured in
	// the paper through YARN vcores plus a DAG attribute (Section
	// III-A2). Defaults to 1.
	Parallelism int
	// ContainerMemoryMB sizes each operator container; defaults to 2048.
	ContainerMemoryMB int
	// WindowTuples is the streaming-window length in tuples; defaults
	// to 500. Apex uses 500ms time windows; a tuple-count window keeps
	// simulated runs deterministic at equivalent granularity.
	WindowTuples int
	// CheckpointWindows checkpoints operator state every N windows;
	// defaults to 30 (Apex's default checkpoint interval in windows).
	CheckpointWindows int
	// RestartAttempts is how many times STRAM redeploys a failed
	// application; defaults to 0.
	RestartAttempts int
	// Costs is the latency model; zero charges nothing.
	Costs simcost.Costs
	// Sim scales the cost model; nil charges nothing.
	Sim *simcost.Simulator
	// Metrics, when non-nil, receives per-operator throughput while the
	// application runs: every partition marks its operator's record
	// count at streaming-window boundaries. Marks are cumulative like
	// monitoring counters: with RestartAttempts > 0 they include the
	// work a failed attempt performed, unlike the per-attempt
	// OperatorStats counters, which reset on every attempt. Nil
	// disables collection.
	Metrics *metrics.Collector
	// Trace, when non-nil, records a span per operator partition and a
	// watermark gauge per operator. Nil disables tracing.
	Trace *obs.Tracer
}

func (c *LaunchConfig) validate() error {
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.ContainerMemoryMB == 0 {
		c.ContainerMemoryMB = 2048
	}
	if c.WindowTuples == 0 {
		c.WindowTuples = 500
	}
	if c.CheckpointWindows == 0 {
		c.CheckpointWindows = 30
	}
	if c.Parallelism < 0 || c.ContainerMemoryMB < 0 || c.WindowTuples < 0 ||
		c.CheckpointWindows < 0 || c.RestartAttempts < 0 {
		return fmt.Errorf("apex: negative launch configuration %+v", *c)
	}
	return nil
}

// OperatorStats counts tuples through one logical operator across its
// partitions.
type OperatorStats struct {
	Name string

	in      atomic.Int64
	out     atomic.Int64
	windows atomic.Int64
}

func (s *OperatorStats) reset() {
	s.in.Store(0)
	s.out.Store(0)
	s.windows.Store(0)
}

// OperatorReport is an immutable snapshot of one operator's counters.
type OperatorReport struct {
	Name      string
	TuplesIn  int64
	TuplesOut int64
	Windows   int64
}

// AppResult summarizes a finished application.
type AppResult struct {
	AppName string
	// Duration is the wall-clock run time including deployment.
	Duration time.Duration
	// Attempts is 1 plus the restarts consumed.
	Attempts int
	// Containers is the number of YARN containers per attempt,
	// including the STRAM Application Master.
	Containers int
	// Operators holds per-operator counters from the last attempt.
	Operators []OperatorReport
}

// OperatorReportFor returns the report of the named operator.
func (r *AppResult) OperatorReportFor(name string) (OperatorReport, bool) {
	for _, o := range r.Operators {
		if o.Name == name {
			return o, true
		}
	}
	return OperatorReport{}, false
}

// Stram is the Streaming Application Manager: the YARN Application
// Master coordinating an application's containers.
type Stram struct {
	cluster *yarn.Cluster
	app     *Application
	cfg     LaunchConfig

	done chan struct{}
	res  *AppResult
	err  error
}

// Launch validates and deploys an application on the YARN cluster and
// starts it asynchronously; use Await to wait for completion.
func Launch(cluster *yarn.Cluster, app *Application, cfg LaunchConfig) (*Stram, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := app.validate(); err != nil {
		return nil, err
	}
	if !cluster.Running() {
		return nil, yarn.ErrStopped
	}
	s := &Stram{cluster: cluster, app: app, cfg: cfg, done: make(chan struct{})}
	need := 1 + s.totalPartitions()
	if cluster.TotalVCores() < need {
		return nil, fmt.Errorf("%w: application needs %d, cluster has %d",
			yarn.ErrInsufficientVCores, need, cluster.TotalVCores())
	}
	go s.run()
	return s, nil
}

// Await blocks until the application finishes and returns its result.
func (s *Stram) Await() (*AppResult, error) {
	<-s.done
	return s.res, s.err
}

// partitionsOf resolves an operator's effective partition count.
func (s *Stram) partitionsOf(op *opDef) int {
	if op.partitions > 0 {
		return op.partitions
	}
	return s.cfg.Parallelism
}

// totalPartitions sums the partition counts of all operators.
func (s *Stram) totalPartitions() int {
	total := 0
	for _, name := range s.app.order {
		total += s.partitionsOf(s.app.ops[name])
	}
	return total
}

func (s *Stram) run() {
	defer close(s.done)
	// Wall-clock here times the run for AppResult.Duration telemetry;
	// it never reaches record bytes, which carry their own event time.
	//beamvet:allow determinism duration telemetry, not record output
	start := time.Now()
	attempts := 0
	for {
		attempts++
		err := s.runAttempt()
		if err == nil {
			s.res = &AppResult{
				AppName:    s.app.name,
				Duration:   time.Since(start),
				Attempts:   attempts,
				Containers: 1 + s.totalPartitions(),
				Operators:  s.operatorReports(),
			}
			return
		}
		if attempts > s.cfg.RestartAttempts {
			s.err = fmt.Errorf("apex: application %q failed after %d attempt(s): %w",
				s.app.name, attempts, err)
			return
		}
	}
}

func (s *Stram) operatorReports() []OperatorReport {
	out := make([]OperatorReport, 0, len(s.app.order))
	for _, name := range s.app.order {
		st := s.app.ops[name].stats
		out = append(out, OperatorReport{
			Name:      st.Name,
			TuplesIn:  st.in.Load(),
			TuplesOut: st.out.Load(),
			Windows:   st.windows.Load(),
		})
	}
	return out
}

// attempt wires one deployment of the application.
type attempt struct {
	stram *Stram
	yapp  *yarn.Application
	stop  chan struct{}

	mu  sync.Mutex
	err error

	// inbox[operator][partition] is the buffer-server subscriber queue:
	// one merged queue per operator partition, fed by all of the
	// operator's input streams.
	inbox map[string][]chan streamBatch
	// fromBase[stream] offsets the publishing partition index into the
	// destination operator's global sender-id space (stream order, then
	// partition order), so per-input watermark tracking can tell the
	// senders of different input streams apart.
	fromBase map[*streamDef]int
}

func (at *attempt) fail(err error) {
	if err == nil || errors.Is(err, errAttemptStopped) {
		return
	}
	at.mu.Lock()
	defer at.mu.Unlock()
	if at.err == nil {
		at.err = err
		close(at.stop)
	}
}

func (at *attempt) failure() error {
	at.mu.Lock()
	defer at.mu.Unlock()
	return at.err
}

// streamBatch is one buffer-server publication: tuples plus an optional
// streaming-window boundary marker, tagged with the publishing upstream
// sender (global over the subscriber's input streams). A batch with wm
// set is a watermark control event instead: it carries no tuples and
// advances the sender's input watermark at the subscriber
// (watermark.EndOfTime finalizes it).
type streamBatch struct {
	tuples    [][]byte
	windowEnd bool
	from      int
	wm        time.Time
}

func (s *Stram) runAttempt() error {
	for _, name := range s.app.order {
		s.app.ops[name].stats.reset()
	}
	// Pre-register telemetry stages in DAG insertion order so reports
	// list operators deterministically regardless of deployment races.
	if m := s.cfg.Metrics; m != nil {
		for _, name := range s.app.order {
			m.Stage(name)
		}
	}

	// STRAM itself is the Application Master container.
	yapp, err := s.cluster.SubmitApplication(s.app.name, yarn.Resource{MemoryMB: 1024, VCores: 1})
	if err != nil {
		return err
	}
	defer yapp.Finish()

	deploy := s.cfg.Sim.NewMeter()
	deploy.Charge(s.cfg.Costs.EngineJobStart)
	deploy.Charge(s.cfg.Costs.YarnContainerStart) // the AM container

	at := &attempt{
		stram:    s,
		yapp:     yapp,
		stop:     make(chan struct{}),
		inbox:    make(map[string][]chan streamBatch),
		fromBase: make(map[*streamDef]int),
	}

	// One container per operator partition.
	type deployment struct {
		op   *opDef
		part int
		ctr  *yarn.Container
	}
	var deployments []deployment
	for _, name := range s.app.order {
		op := s.app.ops[name]
		parts := s.partitionsOf(op)
		for p := range parts {
			ctr, err := yapp.AllocateContainer(yarn.Resource{MemoryMB: s.cfg.ContainerMemoryMB, VCores: 1})
			if err != nil {
				return fmt.Errorf("apex: deploy %s[%d]: %w", name, p, err)
			}
			deploy.Charge(s.cfg.Costs.YarnContainerStart)
			deployments = append(deployments, deployment{op: op, part: p, ctr: ctr})
		}
		if len(op.inStreams) > 0 {
			chans := make([]chan streamBatch, parts)
			for p := range chans {
				chans[p] = make(chan streamBatch, _streamChannelBuffer)
			}
			at.inbox[name] = chans
			base := 0
			for _, in := range op.inStreams {
				at.fromBase[in] = base
				base += s.partitionsOf(s.app.ops[in.from])
			}
		}
	}
	deploy.Flush()

	// Per-operator upstream completion tracking closes the merged
	// subscriber queues: a queue closes once every upstream partition of
	// every input stream has finished.
	opWG := make(map[string]*sync.WaitGroup, len(s.app.ops))
	for _, name := range s.app.order {
		op := s.app.ops[name]
		if len(op.inStreams) == 0 {
			continue
		}
		n := 0
		for _, in := range op.inStreams {
			n += s.partitionsOf(s.app.ops[in.from])
		}
		wg := &sync.WaitGroup{}
		wg.Add(n)
		opWG[name] = wg
	}

	var all sync.WaitGroup
	for _, d := range deployments {
		all.Add(1)
		go func(d deployment) {
			defer all.Done()
			defer func() {
				for _, out := range d.op.outStreams {
					opWG[out.to].Done()
				}
			}()
			if err := at.runPartition(d.op, d.part, d.ctr); err != nil {
				at.fail(err)
			}
		}(d)
	}
	for name, wg := range opWG {
		all.Add(1)
		go func(name string, wg *sync.WaitGroup) {
			defer all.Done()
			wg.Wait()
			for _, ch := range at.inbox[name] {
				close(ch)
			}
		}(name, wg)
	}
	all.Wait()
	return at.failure()
}

// partitionContext implements OperatorContext.
type partitionContext struct {
	idx     int
	count   int
	inParts int
	meter   *simcost.Meter
}

func (c *partitionContext) PartitionIndex() int    { return c.idx }
func (c *partitionContext) PartitionCount() int    { return c.count }
func (c *partitionContext) InputPartitions() int   { return c.inParts }
func (c *partitionContext) Charge(d time.Duration) { c.meter.Charge(d) }

func (at *attempt) runPartition(op *opDef, part int, ctr *yarn.Container) error {
	s := at.stram
	inParts := 0
	for _, in := range op.inStreams {
		inParts += s.partitionsOf(s.app.ops[in.from])
	}
	ctx := &partitionContext{idx: part, count: s.partitionsOf(op), inParts: inParts, meter: s.cfg.Sim.NewMeter()}
	defer ctx.meter.Flush()

	// One span per operator partition attempt.
	span := s.cfg.Trace.Span("apex/"+op.name+"/p"+strconv.Itoa(part), "partition")
	defer span.End()

	// Telemetry handle, resolved once per partition; marks happen at
	// streaming-window boundaries, so the per-tuple path stays clean.
	var stage *metrics.Stage
	if s.cfg.Metrics != nil {
		stage = s.cfg.Metrics.Stage(op.name)
	}

	senders := make([]*streamSender, len(op.outStreams))
	for i, out := range op.outStreams {
		senders[i] = &streamSender{
			def:     out,
			fromIdx: at.fromBase[out] + part,
			part:    part,
			// Parallel partitioning (Apex's partition locality): an
			// equal-width non-keyed stream forwards partition-locally
			// instead of round-robin, so each partition chain keeps its
			// upstream arrival order end to end. That order preservation is
			// what keeps the watermark a timestamp assigner stamps from its
			// partition's stream sound all the way to the keyed shuffle —
			// a round-robin split/re-merge between equal-width operators
			// would interleave racing senders and unbound the event-time
			// disorder the assigner's bound promises to cover.
			oneToOne: ctx.count == len(at.inbox[out.to]),
			targets:  at.inbox[out.to],
			meter:    ctx.meter,
			costs:    s.cfg.Costs,
			stop:     at.stop,
		}
	}

	switch op.kind {
	case kindInput:
		return at.runInputPartition(op, ctx, ctr, senders, stage)
	case kindGeneric:
		return at.runGenericPartition(op, ctx, ctr, senders, stage)
	case kindOutput:
		return at.runOutputPartition(op, ctx, ctr, stage)
	default:
		return fmt.Errorf("apex: unknown operator kind %d", op.kind)
	}
}

func (at *attempt) runInputPartition(op *opDef, ctx *partitionContext, ctr *yarn.Container, senders []*streamSender, stage *metrics.Stage) error {
	s := at.stram
	inst, err := op.input(ctx)
	if err != nil {
		return fmt.Errorf("apex: setup input %q[%d]: %w", op.name, ctx.idx, err)
	}
	defer func() { _ = inst.Teardown() }()

	var (
		window  [][]byte
		windows int64
	)
	flush := func() error {
		for _, snd := range senders {
			if err := snd.publishWindow(window); err != nil {
				return err
			}
		}
		stage.Mark(int64(len(window)))
		op.stats.windows.Add(1)
		windows++
		if windows%int64(s.cfg.CheckpointWindows) == 0 {
			ctx.meter.Charge(s.cfg.Costs.Checkpoint)
		}
		window = window[:0]
		return nil
	}

	for {
		if !ctr.Alive() {
			return fmt.Errorf("apex: container %s of %q[%d] killed", ctr.ID, op.name, ctx.idx)
		}
		select {
		case <-at.stop:
			return errAttemptStopped
		default:
		}
		done, err := inst.NextTuples(s.cfg.WindowTuples-len(window), func(t []byte) error {
			op.stats.out.Add(1)
			window = append(window, t)
			return nil
		})
		if err != nil {
			return fmt.Errorf("apex: input %q[%d]: %w", op.name, ctx.idx, err)
		}
		if len(window) >= s.cfg.WindowTuples || (done && len(window) > 0) {
			if err := flush(); err != nil {
				return err
			}
		}
		if done {
			// The source met its end-of-input contract: finalize this
			// partition's watermark downstream so no subscriber keeps
			// waiting for it.
			for _, snd := range senders {
				if err := snd.publishWatermark(watermark.EndOfTime); err != nil {
					return err
				}
			}
			return nil
		}
	}
}

func (at *attempt) runGenericPartition(op *opDef, ctx *partitionContext, ctr *yarn.Container, senders []*streamSender, stage *metrics.Stage) error {
	s := at.stram
	inst, err := op.generic(ctx)
	if err != nil {
		return fmt.Errorf("apex: setup operator %q[%d]: %w", op.name, ctx.idx, err)
	}
	defer func() { _ = inst.Teardown() }()

	in := at.inbox[op.name][ctx.idx]
	var (
		pending   [][]byte
		windows   int64
		sinceMark int64
	)
	emit := func(t []byte) error {
		op.stats.out.Add(1)
		sinceMark++
		// Per-tuple downstream streams publish immediately; windowed
		// streams accumulate until the window boundary.
		for _, snd := range senders {
			if snd.def.perTuple {
				if err := snd.publishTuple(t); err != nil {
					return err
				}
			}
		}
		if !allPerTuple(senders) {
			pending = append(pending, t)
		}
		return nil
	}

	// Sender-aware operators (keyed event-time state) are told which
	// upstream sender published each tuple. Watermark-aware operators
	// receive the combined (min-over-senders) input watermark as it
	// advances; watermark emitters (the timestamp assigner) generate it.
	sa, senderAware := inst.(SenderAware)
	wa, watermarkAware := inst.(WatermarkAware)
	we, watermarkEmitter := inst.(WatermarkEmitter)
	tracker := watermark.NewMinTracker(max(ctx.inParts, 1))
	// A parallel-partitioned (1:1) input stream routes tuples and
	// watermarks partition-locally, so the senders of its non-matching
	// partitions will never publish here: pre-finalize their tracker
	// slots or the combined minimum would wait on them forever.
	base := 0
	for _, in := range op.inStreams {
		fromParts := s.partitionsOf(s.app.ops[in.from])
		if in.keyFn == nil && fromParts == ctx.count {
			for p := range fromParts {
				if p != ctx.idx {
					tracker.Finalize(base + p)
				}
			}
		}
		base += fromParts
	}
	var delivered, toForward time.Time
	// forwardWM publishes the pending outgoing watermark. It runs only
	// right after pending tuples have published, so no subscriber sees a
	// watermark ahead of the records it covers.
	forwardWM := func() error {
		if toForward.IsZero() {
			return nil
		}
		w := toForward
		toForward = time.Time{}
		for _, snd := range senders {
			if err := snd.publishWatermark(w); err != nil {
				return err
			}
		}
		return nil
	}
	wmGauge := s.cfg.Trace.Gauge("watermark-lag/" + op.name)
	onWatermark := func(w time.Time) error {
		if !w.After(delivered) {
			return nil
		}
		delivered = w
		wmGauge.SetTime(w)
		if w.Equal(watermark.EndOfTime) {
			s.cfg.Trace.Instant("drain/"+op.name, "end-of-input")
		}
		if watermarkAware {
			if err := wa.OnWatermark(w, emit); err != nil {
				return fmt.Errorf("apex: operator %q[%d] watermark: %w", op.name, ctx.idx, err)
			}
		}
		if w.After(toForward) {
			toForward = w
		}
		return nil
	}
	for batch := range in {
		if !ctr.Alive() {
			return fmt.Errorf("apex: container %s of %q[%d] killed", ctr.ID, op.name, ctx.idx)
		}
		if !batch.wm.IsZero() {
			// Watermark control event: advance (or finalize) the sender's
			// input watermark and react if the combined minimum moved.
			if batch.wm.Equal(watermark.EndOfTime) {
				tracker.Finalize(batch.from)
			} else {
				tracker.Advance(batch.from, batch.wm)
			}
			if err := onWatermark(tracker.Combined()); err != nil {
				return err
			}
			if len(pending) > 0 {
				// The watermark released panes into the buffer (or per-tuple
				// arrivals were still accumulating): publish them now, so the
				// control event's effects reach downstream without waiting for
				// the next streaming-window boundary — tuple traffic may have
				// paused entirely.
				for _, snd := range senders {
					if !snd.def.perTuple {
						if err := snd.publishWindow(pending); err != nil {
							return err
						}
					}
				}
				pending = pending[:0]
				stage.Mark(sinceMark)
				sinceMark = 0
			}
			// Everything emitted so far has published: the watermark may
			// follow at once. Deferring to the next window boundary would
			// stall idle partitions, which see no tuple traffic at all.
			if err := forwardWM(); err != nil {
				return err
			}
			continue
		}
		for _, t := range batch.tuples {
			op.stats.in.Add(1)
			var err error
			if senderAware {
				err = sa.ProcessFrom(batch.from, t, emit)
			} else {
				err = inst.Process(t, emit)
			}
			if err != nil {
				return fmt.Errorf("apex: operator %q[%d]: %w", op.name, ctx.idx, err)
			}
		}
		if watermarkEmitter {
			if err := onWatermark(we.CurrentWatermark()); err != nil {
				return err
			}
		}
		if batch.windowEnd {
			// Window-boundary flush: a window-aware stateful operator
			// (windowed aggregation) emits its watermark-ready panes into
			// the closing window before it publishes downstream.
			if wea, ok := inst.(WindowEndAware); ok {
				if err := wea.EndWindow(emit); err != nil {
					return fmt.Errorf("apex: operator %q[%d] end window: %w", op.name, ctx.idx, err)
				}
			}
			for _, snd := range senders {
				if snd.def.perTuple {
					if err := snd.publishMarker(); err != nil {
						return err
					}
					continue
				}
				if err := snd.publishWindow(pending); err != nil {
					return err
				}
			}
			pending = pending[:0]
			// The window's tuples have published; the watermark covering
			// them may follow.
			if err := forwardWM(); err != nil {
				return err
			}
			stage.Mark(sinceMark)
			sinceMark = 0
			op.stats.windows.Add(1)
			windows++
			if windows%int64(s.cfg.CheckpointWindows) == 0 {
				ctx.meter.Charge(s.cfg.Costs.Checkpoint)
			}
		}
	}
	// End of stream: stateful operators release their remaining state
	// (the upstream sources met the broker.EndOfInput contract), then a
	// trailing partial window publishes without a boundary marker, and
	// the partition finalizes its watermark downstream.
	if fl, ok := inst.(StreamFlusher); ok {
		if err := fl.EndStream(emit); err != nil {
			return fmt.Errorf("apex: operator %q[%d] end stream: %w", op.name, ctx.idx, err)
		}
	}
	if len(pending) > 0 {
		for _, snd := range senders {
			if !snd.def.perTuple {
				if err := snd.publishWindow(pending); err != nil {
					return err
				}
			}
		}
	}
	stage.Mark(sinceMark)
	for _, snd := range senders {
		if err := snd.publishWatermark(watermark.EndOfTime); err != nil {
			return err
		}
	}
	return nil
}

func (at *attempt) runOutputPartition(op *opDef, ctx *partitionContext, ctr *yarn.Container, stage *metrics.Stage) error {
	s := at.stram
	inst, err := op.output(ctx)
	if err != nil {
		return fmt.Errorf("apex: setup output %q[%d]: %w", op.name, ctx.idx, err)
	}
	defer func() { _ = inst.Teardown() }()

	in := at.inbox[op.name][ctx.idx]
	var (
		windows        int64
		sinceWindowEnd int
	)
	for batch := range in {
		if !ctr.Alive() {
			return fmt.Errorf("apex: container %s of %q[%d] killed", ctr.ID, op.name, ctx.idx)
		}
		if !batch.wm.IsZero() {
			continue // sinks need no event-time progress
		}
		for _, t := range batch.tuples {
			op.stats.in.Add(1)
			sinceWindowEnd++
			if err := inst.Process(t); err != nil {
				return fmt.Errorf("apex: output %q[%d]: %w", op.name, ctx.idx, err)
			}
		}
		if batch.windowEnd {
			if err := inst.EndWindow(); err != nil {
				return fmt.Errorf("apex: output %q[%d] end window: %w", op.name, ctx.idx, err)
			}
			stage.Mark(int64(sinceWindowEnd))
			sinceWindowEnd = 0
			op.stats.windows.Add(1)
			windows++
			if windows%int64(s.cfg.CheckpointWindows) == 0 {
				ctx.meter.Charge(s.cfg.Costs.Checkpoint)
			}
		}
	}
	if sinceWindowEnd > 0 {
		if err := inst.EndWindow(); err != nil {
			return fmt.Errorf("apex: output %q[%d] final window: %w", op.name, ctx.idx, err)
		}
		stage.Mark(int64(sinceWindowEnd))
		op.stats.windows.Add(1)
	}
	return nil
}

func allPerTuple(senders []*streamSender) bool {
	for _, snd := range senders {
		if !snd.def.perTuple {
			return false
		}
	}
	return len(senders) > 0
}

// streamSender is one upstream partition's buffer-server publisher for
// one stream. fromIdx is the sender's global id in the destination
// operator's input space (stream base + partition index).
type streamSender struct {
	def      *streamDef
	fromIdx  int
	part     int
	oneToOne bool
	targets  []chan streamBatch
	rr       int
	lastWM   time.Time
	meter    *simcost.Meter
	costs    simcost.Costs
	stop     <-chan struct{}
}

// partitionOf selects the downstream partition for one tuple: keyed
// hash routing when the stream is keyed (SetStreamKeyed),
// partition-local forwarding between equal-width operators (parallel
// partitioning), round-robin otherwise.
func (ss *streamSender) partitionOf(t []byte) (int, error) {
	if ss.def.keyFn != nil {
		key, err := ss.def.keyFn(t)
		if err != nil {
			return 0, fmt.Errorf("apex: stream %q key: %w", ss.def.name, err)
		}
		return keyhash.Partition(key, len(ss.targets)), nil
	}
	if ss.oneToOne {
		return ss.part, nil
	}
	i := ss.rr % len(ss.targets)
	ss.rr++
	return i, nil
}

// publishWindow splits the window's tuples over the downstream
// partitions — round-robin, or by key hash on a keyed stream — and
// publishes one batch (with window marker) to every partition, matching
// the engine's windowed buffer-server mode.
func (ss *streamSender) publishWindow(tuples [][]byte) error {
	parts := make([][][]byte, len(ss.targets))
	for _, t := range tuples {
		i, err := ss.partitionOf(t)
		if err != nil {
			return err
		}
		parts[i] = append(parts[i], cloneTuple(t))
	}
	for i, target := range ss.targets {
		if err := ss.send(target, streamBatch{tuples: parts[i], windowEnd: true, from: ss.fromIdx}, len(parts[i])); err != nil {
			return err
		}
	}
	return nil
}

// publishTuple publishes one tuple unbatched — one buffer-server
// round trip per tuple, the Beam runner's output mode.
func (ss *streamSender) publishTuple(t []byte) error {
	i, err := ss.partitionOf(t)
	if err != nil {
		return err
	}
	return ss.send(ss.targets[i], streamBatch{tuples: [][]byte{cloneTuple(t)}, from: ss.fromIdx}, 1)
}

// publishWatermark publishes a watermark control event downstream: to
// the sender's own partition on a parallel-partitioned (1:1) stream —
// matching where its tuples go, so the receivers' pre-finalized sender
// slots stay silent — broadcast to every partition otherwise.
// Per-sender monotone: repeats and regressions are dropped, so the
// downstream MinTracker only ever sees advances.
func (ss *streamSender) publishWatermark(w time.Time) error {
	if !w.After(ss.lastWM) {
		return nil
	}
	ss.lastWM = w
	if ss.def.keyFn == nil && ss.oneToOne {
		return ss.send(ss.targets[ss.part], streamBatch{wm: w, from: ss.fromIdx}, 0)
	}
	for _, target := range ss.targets {
		if err := ss.send(target, streamBatch{wm: w, from: ss.fromIdx}, 0); err != nil {
			return err
		}
	}
	return nil
}

// publishMarker broadcasts a window boundary to all partitions.
func (ss *streamSender) publishMarker() error {
	for _, target := range ss.targets {
		if err := ss.send(target, streamBatch{windowEnd: true, from: ss.fromIdx}, 0); err != nil {
			return err
		}
	}
	return nil
}

func (ss *streamSender) send(target chan streamBatch, b streamBatch, n int) error {
	ss.meter.Charge(ss.costs.BufferServerPublish)
	ss.meter.Charge(time.Duration(n) * ss.costs.BufferServerPerRecord)
	select {
	case target <- b:
		return nil
	case <-ss.stop:
		return errAttemptStopped
	}
}

func cloneTuple(t []byte) []byte {
	cp := make([]byte, len(t))
	copy(cp, t)
	return cp
}
