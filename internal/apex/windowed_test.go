package apex

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"beambench/internal/yarn"
)

var winEpoch = time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC)

func windowedTuple(sec int, key string) []byte {
	return []byte(fmt.Sprintf("%d|%s", sec, key))
}

func winEventTime(t []byte) (time.Time, error) {
	var sec int
	if _, err := fmt.Sscanf(string(t), "%d|", &sec); err != nil {
		return time.Time{}, err
	}
	return winEpoch.Add(time.Duration(sec) * time.Second), nil
}

func winKey(t []byte) ([]byte, error) {
	i := strings.IndexByte(string(t), '|')
	return t[i+1:], nil
}

func winFormat(start time.Time, key []byte, count int64) []byte {
	return []byte(fmt.Sprintf("%d:%s=%d", start.Sub(winEpoch)/time.Second, key, count))
}

func runWindowedApp(t *testing.T, input [][]byte, parallelism, windowTuples int) []string {
	t.Helper()
	cluster, err := yarn.NewCluster(yarn.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	t.Cleanup(cluster.Stop)

	collector := NewTupleCollector()
	app := NewApplication("windowed")
	app.AddInput("in", SliceInput(input))
	app.AddOperator("assign", AssignTimestamps(winEventTime, 0))
	app.AddOperator("count", TumblingCountWindow(time.Second, winEventTime, winKey, winFormat))
	app.AddOutput("out", CollectOutput(collector))
	app.AddStream("s0", "in", "assign")
	app.AddStream("s1", "assign", "count")
	app.AddStream("s2", "count", "out")
	app.SetStreamKeyed("s1", winKey)

	stram, err := Launch(cluster, app, LaunchConfig{Parallelism: parallelism, WindowTuples: windowTuples})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stram.Await(); err != nil {
		t.Fatal(err)
	}
	return collector.Strings()
}

func TestTumblingCountWindowCountsPerWindowAndKey(t *testing.T) {
	input := [][]byte{
		windowedTuple(0, "a"),
		windowedTuple(0, "b"),
		windowedTuple(0, "a"),
		windowedTuple(1, "a"),
		windowedTuple(2, "b"),
	}
	got := runWindowedApp(t, input, 1, 0)
	want := []string{"0:a=2", "0:b=1", "1:a=1", "2:b=1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("panes = %v, want %v", got, want)
	}
}

// TestTumblingCountWindowFiresOnStreamingWindowBoundary pins the
// EndWindow flush: with a 2-tuple streaming window, the pane of an
// already-passed event-time window must be published at the next window
// boundary, before the input ends.
func TestTumblingCountWindowFiresOnStreamingWindowBoundary(t *testing.T) {
	input := [][]byte{
		windowedTuple(0, "a"),
		windowedTuple(1, "a"), // watermark passes window 0 here
		windowedTuple(1, "b"),
		windowedTuple(9, "z"), // forces another boundary
	}
	got := runWindowedApp(t, input, 1, 2)
	want := []string{"0:a=1", "1:a=1", "1:b=1", "9:z=1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("panes = %v, want %v", got, want)
	}
}

// TestTumblingCountWindowKeyedPartitioning checks that keyed stream
// routing keeps every (window, key) pane whole at parallelism 2.
func TestTumblingCountWindowKeyedPartitioning(t *testing.T) {
	var input [][]byte
	for i := range 80 {
		input = append(input, windowedTuple(i/20, fmt.Sprintf("k%d", i%4)))
	}
	got := runWindowedApp(t, input, 2, 0)
	// 4 windows x 4 keys, 5 records each.
	sort.Strings(got)
	counts := make(map[string]int)
	for _, pane := range got {
		counts[pane]++
	}
	if len(counts) != 16 {
		t.Fatalf("distinct panes = %d, want 16: %v", len(counts), got)
	}
	for pane, n := range counts {
		if n != 1 {
			t.Errorf("pane %q emitted %d times (key split across partitions)", pane, n)
		}
		if !strings.HasSuffix(pane, "=5") {
			t.Errorf("pane %q count wrong, want =5", pane)
		}
	}
}

// gatedInput emits head tuples from partition 0, then waits for the
// test to open the gate before emitting tail and finishing. Non-zero
// partitions finish immediately, like an idle Kafka reader.
type gatedInput struct {
	head, tail [][]byte
	gate       <-chan struct{}
	pos        int
}

func (g *gatedInput) NextTuples(max int, emit func([]byte) error) (bool, error) {
	if g.pos < len(g.head) {
		if err := emit(g.head[g.pos]); err != nil {
			return false, err
		}
		g.pos++
		return false, nil
	}
	if g.gate != nil {
		select {
		case <-g.gate:
			g.gate = nil
		case <-time.After(10 * time.Second):
			return false, fmt.Errorf("no pane fired mid-stream: watermark did not release a passed window before end of input")
		}
	}
	if g.pos < len(g.head)+len(g.tail) {
		if err := emit(g.tail[g.pos-len(g.head)]); err != nil {
			return false, err
		}
		g.pos++
	}
	return g.pos >= len(g.head)+len(g.tail), nil
}

func (g *gatedInput) Teardown() error { return nil }

// chanOutput forwards every received tuple to a channel.
type chanOutput struct{ ch chan<- string }

func (o chanOutput) Process(t []byte) error { o.ch <- string(t); return nil }
func (o chanOutput) EndWindow() error       { return nil }
func (o chanOutput) Teardown() error        { return nil }

// TestTumblingCountWindowFiresPerPaneAtP2 pins per-pane firing under
// parallelism 2: once the propagated (min-over-senders) watermark has
// passed a window's end, its pane must publish while the input is still
// running. The input withholds its final record until the first pane
// reaches the sink — under the old conservative fallback (panes fire
// only at end of input at P>1) this test times out instead.
func TestTumblingCountWindowFiresPerPaneAtP2(t *testing.T) {
	cluster, err := yarn.NewCluster(yarn.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	t.Cleanup(cluster.Stop)

	fired := make(chan string, 16)
	gate := make(chan struct{})
	app := NewApplication("perpane")
	app.AddInput("in", func(ctx OperatorContext) (InputOperator, error) {
		if ctx.PartitionIndex() != 0 {
			return &gatedInput{}, nil
		}
		return &gatedInput{
			head: [][]byte{
				windowedTuple(0, "a"),
				windowedTuple(2, "a"), // bound-0 watermark passes window 0 here
			},
			tail: [][]byte{windowedTuple(9, "z")},
			gate: gate,
		}, nil
	})
	app.AddOperator("assign", AssignTimestamps(winEventTime, 0))
	app.AddOperator("count", TumblingCountWindow(time.Second, winEventTime, winKey, winFormat))
	app.AddOutput("out", func(OperatorContext) (OutputOperator, error) {
		return chanOutput{ch: fired}, nil
	})
	app.AddStream("s0", "in", "assign")
	app.AddStream("s1", "assign", "count")
	app.AddStream("s2", "count", "out")
	app.SetStreamKeyed("s1", winKey)

	go func() {
		for pane := range fired {
			if pane == "0:a=1" {
				close(gate)
				return
			}
		}
	}()
	stram, err := Launch(cluster, app, LaunchConfig{Parallelism: 2, WindowTuples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stram.Await(); err != nil {
		t.Fatal(err)
	}
}

func TestTumblingCountWindowValidation(t *testing.T) {
	cluster, err := yarn.NewCluster(yarn.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cluster.Start()
	t.Cleanup(cluster.Stop)
	collector := NewTupleCollector()
	app := NewApplication("bad")
	app.AddInput("in", SliceInput([][]byte{windowedTuple(0, "a")}))
	app.AddOperator("count", TumblingCountWindow(0, winEventTime, winKey, winFormat))
	app.AddOutput("out", CollectOutput(collector))
	app.AddStream("s1", "in", "count")
	app.AddStream("s2", "count", "out")
	stram, err := Launch(cluster, app, LaunchConfig{})
	if err == nil {
		_, err = stram.Await()
	}
	if err == nil {
		t.Error("zero window size accepted")
	}
}

func TestSetStreamKeyedUnknownStream(t *testing.T) {
	app := NewApplication("bad")
	app.SetStreamKeyed("nope", winKey)
	if err := app.validate(); err == nil {
		t.Error("unknown stream accepted")
	}
}
