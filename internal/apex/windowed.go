package apex

import (
	"errors"
	"fmt"
	"time"

	"beambench/internal/watermark"
)

// TumblingCountWindow returns the engine's keyed windowed aggregation
// operator: a per-(window, key) count over event-time tumbling windows.
// The operator keeps one watermark generator per upstream partition
// (watermark.MergedGenerator — minimum-across-inputs propagation):
// every upstream publishes an ordered tuple stream, but their merge at
// this partition is not ordered, so pane readiness follows the slowest
// input. Panes flush at streaming-window boundaries (EndWindow) — the
// engine's natural batch clock — ascending by window with keys in
// first-seen order, and the remaining state drains when the input
// stream ends.
//
// Route the input stream with Application.SetStreamKeyed using the same
// key extractor, so every key's tuples reach one partition.
func TumblingCountWindow(size, bound time.Duration,
	eventTime func(tuple []byte) (time.Time, error),
	key func(tuple []byte) ([]byte, error),
	format func(windowStart time.Time, key []byte, count int64) []byte,
) GenericFactory {
	switch {
	case size <= 0:
		return failingGeneric(fmt.Errorf("apex: window size must be positive, got %v", size))
	case eventTime == nil, key == nil, format == nil:
		return failingGeneric(errors.New("apex: windowed count needs event-time, key and format fns"))
	}
	return func(ctx OperatorContext) (GenericOperator, error) {
		state, err := watermark.NewTumblingState[int64](size)
		if err != nil {
			return nil, err
		}
		return &windowCountOperator{
			gen:       watermark.NewMergedGenerator(ctx.InputPartitions(), bound),
			state:     state,
			eventTime: eventTime,
			key:       key,
			format:    format,
		}, nil
	}
}

// windowCountOperator implements GenericOperator plus the sender,
// window and stream hooks.
type windowCountOperator struct {
	gen       *watermark.MergedGenerator
	state     *watermark.TumblingState[int64]
	eventTime func([]byte) (time.Time, error)
	key       func([]byte) ([]byte, error)
	format    func(time.Time, []byte, int64) []byte
}

// ProcessFrom implements SenderAware: accumulate one tuple, observing
// its event time under the publishing upstream's watermark; panes fire
// only at window boundaries.
func (o *windowCountOperator) ProcessFrom(from int, t []byte, emit func([]byte) error) error {
	et, err := o.eventTime(t)
	if err != nil {
		return fmt.Errorf("apex: window event time: %w", err)
	}
	key, err := o.key(t)
	if err != nil {
		return fmt.Errorf("apex: window key: %w", err)
	}
	o.state.Upsert(et, string(key), func(c *int64) { *c++ })
	o.gen.Observe(from, et)
	return nil
}

// Process implements GenericOperator for direct (runtime-external) use;
// the runtime calls ProcessFrom.
func (o *windowCountOperator) Process(t []byte, emit func([]byte) error) error {
	return o.ProcessFrom(0, t, emit)
}

// EndWindow implements WindowEndAware: watermark-ready panes flush on
// the streaming-window boundary.
func (o *windowCountOperator) EndWindow(emit func([]byte) error) error {
	return o.state.FireReady(o.gen.Current(), func(p watermark.Pane[int64]) error {
		return emit(o.format(p.Start, []byte(p.Key), p.Acc))
	})
}

// EndStream implements StreamFlusher: the input ended, so every input's
// watermark finalizes and every remaining pane fires.
func (o *windowCountOperator) EndStream(emit func([]byte) error) error {
	o.gen.FinalizeAll()
	return o.state.FireAll(func(p watermark.Pane[int64]) error {
		return emit(o.format(p.Start, []byte(p.Key), p.Acc))
	})
}

// Teardown implements GenericOperator.
func (o *windowCountOperator) Teardown() error { return nil }
