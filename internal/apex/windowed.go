package apex

import (
	"fmt"
	"time"

	"beambench/internal/watermark"
)

// EventTimeFn extracts a tuple's event timestamp from the tuple itself,
// e.g. a time column of the payload.
type EventTimeFn func(tuple []byte) (time.Time, error)

// WindowFormatFn renders one fired pane as an output tuple.
type WindowFormatFn func(windowStart time.Time, key []byte, value int64) []byte

// ValueFn extracts the numeric column a windowed aggregate folds; nil
// selects a pure count.
type ValueFn func(tuple []byte) (int64, error)

// AssignTimestamps returns the timestamp/watermark assigner operator:
// each partition feeds a watermark.Generator with the given
// out-of-orderness bound and forwards tuples unchanged. The runtime
// publishes the generator's advances downstream as watermark control
// events (the WatermarkEmitter hook) — always behind the tuples they
// cover — so every operator between the assigner and the stateful
// consumers propagates the minimum-over-senders watermark
// automatically. Place it where event time enters the DAG, right after
// the input.
func AssignTimestamps(eventTime EventTimeFn, bound time.Duration) GenericFactory {
	if eventTime == nil {
		return failingGeneric(fmt.Errorf("apex: assign timestamps: nil event-time fn"))
	}
	return func(ctx OperatorContext) (GenericOperator, error) {
		return &assignOperator{gen: watermark.NewGenerator(bound), eventTime: eventTime}, nil
	}
}

// assignOperator implements GenericOperator plus WatermarkEmitter.
type assignOperator struct {
	gen       *watermark.Generator
	eventTime EventTimeFn
}

func (o *assignOperator) Process(t []byte, emit func([]byte) error) error {
	et, err := o.eventTime(t)
	if err != nil {
		return fmt.Errorf("apex: assign timestamps: %w", err)
	}
	o.gen.Observe(et)
	return emit(t)
}

// CurrentWatermark implements WatermarkEmitter.
func (o *assignOperator) CurrentWatermark() time.Time { return o.gen.Current() }

func (o *assignOperator) Teardown() error { return nil }

// WindowConfig parameterizes a keyed windowed aggregation (AggWindowOp).
type WindowConfig struct {
	// Size is the tumbling window length in event time; ignored when
	// Assigner is set.
	Size time.Duration
	// Assigner selects the window family (tumbling, sliding, session);
	// nil selects tumbling windows of Size.
	Assigner watermark.Assigner
	// Agg selects the reduction over Value; zero selects AggCount.
	Agg watermark.AggKind
	// Value extracts the aggregated column; nil counts tuples.
	Value ValueFn
	// EventTime derives each tuple's event timestamp (window
	// assignment). Pane firing is driven by the propagated watermark, so
	// the DAG needs an AssignTimestamps operator upstream.
	EventTime EventTimeFn
	// Key derives each tuple's grouping key; route the input stream with
	// Application.SetStreamKeyed using the same extractor.
	Key func(tuple []byte) ([]byte, error)
	// Format renders fired panes.
	Format WindowFormatFn
}

func (c *WindowConfig) validate() error {
	if c.Assigner == nil {
		a, err := watermark.NewTumblingAssigner(c.Size)
		if err != nil {
			return fmt.Errorf("apex: windowed aggregation: %w", err)
		}
		c.Assigner = a
	}
	if c.Agg == 0 {
		c.Agg = watermark.AggCount
	}
	if !c.Agg.Valid() {
		return fmt.Errorf("apex: windowed aggregation: invalid agg kind %d", c.Agg)
	}
	if c.EventTime == nil || c.Key == nil || c.Format == nil {
		return fmt.Errorf("apex: windowed aggregation: nil event-time, key or format fn")
	}
	return nil
}

// AggWindowOp returns the engine's keyed windowed aggregation operator:
// a per-(window, key) aggregate — count, sum, min, max or avg over a
// tuple column — under any window assigner. Panes fire off the
// propagated watermark (the WatermarkAware hook): the runtime delivers
// the minimum watermark over the partition's upstream senders as
// control events arrive, releasing every window the watermark has
// passed, and the remaining state drains when the input stream ends.
// Because the watermark is combined min-over-senders before delivery, a
// keyed merge of several racing upstream partitions needs no
// conservative fallback: no pane fires before every sender's watermark
// has passed its end.
//
// Route the input stream with Application.SetStreamKeyed using the same
// key extractor, so every key's tuples reach one partition.
func AggWindowOp(cfg WindowConfig) GenericFactory {
	if err := cfg.validate(); err != nil {
		return failingGeneric(err)
	}
	return func(ctx OperatorContext) (GenericOperator, error) {
		state, err := watermark.NewWindowState[watermark.NumAcc](cfg.Assigner,
			func(into *watermark.NumAcc, from watermark.NumAcc) { into.Merge(from) })
		if err != nil {
			return nil, err
		}
		return &windowAggOperator{cfg: cfg, state: state}, nil
	}
}

// TumblingCountWindow is AggWindowOp specialized to the original
// benchmark query: a per-(window, key) count over event-time tumbling
// windows. Pair it with an AssignTimestamps operator upstream — pane
// firing is driven by the propagated watermark.
func TumblingCountWindow(size time.Duration,
	eventTime EventTimeFn,
	key func(tuple []byte) ([]byte, error),
	format WindowFormatFn,
) GenericFactory {
	return AggWindowOp(WindowConfig{
		Size: size, EventTime: eventTime, Key: key, Format: format,
	})
}

// windowAggOperator implements GenericOperator plus the watermark and
// stream hooks.
type windowAggOperator struct {
	cfg   WindowConfig
	state *watermark.WindowState[watermark.NumAcc]
}

// Process accumulates one tuple; panes fire only on watermark advances.
func (o *windowAggOperator) Process(t []byte, emit func([]byte) error) error {
	et, err := o.cfg.EventTime(t)
	if err != nil {
		return fmt.Errorf("apex: window event time: %w", err)
	}
	key, err := o.cfg.Key(t)
	if err != nil {
		return fmt.Errorf("apex: window key: %w", err)
	}
	v := int64(0)
	if o.cfg.Value != nil {
		if v, err = o.cfg.Value(t); err != nil {
			return fmt.Errorf("apex: window value: %w", err)
		}
	}
	// The string hop keys the pane state and the closure is the generic
	// accumulator-update API; combiner lifting (ROADMAP: zero-alloc
	// record path) replaces both with typed upserts.
	//beamvet:allow hotalloc pane state keys by string and updates through the generic accumulator closure until combiner lifting lands
	o.state.Upsert(et, string(key), func(acc *watermark.NumAcc) { acc.Add(v) })
	return nil
}

// OnWatermark implements WatermarkAware: watermark-ready panes fire as
// the combined input watermark advances.
func (o *windowAggOperator) OnWatermark(w time.Time, emit func([]byte) error) error {
	return o.state.FireReady(w, o.emitPane(emit))
}

// EndStream implements StreamFlusher: the input ended, so every
// remaining pane fires.
func (o *windowAggOperator) EndStream(emit func([]byte) error) error {
	return o.state.FireAll(o.emitPane(emit))
}

func (o *windowAggOperator) emitPane(emit func([]byte) error) func(watermark.Pane[watermark.NumAcc]) error {
	return func(p watermark.Pane[watermark.NumAcc]) error {
		return emit(o.cfg.Format(p.Start, []byte(p.Key), p.Acc.Result(o.cfg.Agg)))
	}
}

// Teardown implements GenericOperator.
func (o *windowAggOperator) Teardown() error { return nil }
