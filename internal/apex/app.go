// Package apex simulates Apache Apex (Section II-D of Hesse et al.,
// ICDCS 2019): a tuple-by-tuple streaming engine running on Apache
// Hadoop YARN. An application is a DAG of operators connected by streams;
// the Streaming Application Manager (STRAM) is the YARN Application
// Master; every operator partition runs in its own YARN container; and
// tuples travel between containers through a buffer server.
//
// Two mechanisms matter for the paper's results and are modeled
// faithfully:
//
//   - Streaming windows: operators process tuple-by-tuple, but the buffer
//     server publishes downstream once per streaming window (a batch),
//     and sinks flush on window boundaries. This keeps the native engine
//     competitive with Flink.
//   - Per-tuple streams: a stream can be configured to publish every
//     tuple individually (SetStreamPerTuple). The Beam runner's output
//     path effectively runs in this mode, which is why the paper measures
//     slowdowns of 30-58x for output-heavy queries on Apex while grep
//     (0.3% output) stays on par with native (Figure 11).
//
// Parallelism is configured through YARN vcores plus a DAG attribute,
// exactly as the paper describes (Section III-A2).
package apex

import (
	"errors"
	"fmt"
	"time"

	"beambench/internal/dag"
)

// Errors reported during application assembly and launch.
var (
	ErrDuplicateOperator = errors.New("apex: duplicate operator")
	ErrUnknownOperator   = errors.New("apex: unknown operator")
	ErrInvalidTopology   = errors.New("apex: invalid topology")
)

// OperatorContext describes one operator partition to its instance.
type OperatorContext interface {
	// PartitionIndex is this instance's index in [0, PartitionCount).
	PartitionIndex() int
	// PartitionCount is the operator's partition count.
	PartitionCount() int
	// InputPartitions is the number of upstream partitions publishing
	// into this operator's input streams, summed across all of them
	// (0 for input operators). The runtime sizes the partition's
	// per-input watermark tracking with it: the combined watermark is
	// the minimum across the upstream senders, so one racing upstream
	// cannot fire a pane whose records another upstream still holds.
	InputPartitions() int
	// Charge adds simulated processing cost to this partition.
	Charge(d time.Duration)
}

// InputOperator produces tuples.
type InputOperator interface {
	// NextTuples emits up to max tuples and reports whether the source
	// is exhausted.
	NextTuples(max int, emit func([]byte) error) (done bool, err error)
	// Teardown releases resources.
	Teardown() error
}

// GenericOperator transforms tuples.
type GenericOperator interface {
	// Process handles one tuple, emitting zero or more tuples.
	Process(tuple []byte, emit func([]byte) error) error
	Teardown() error
}

// Optional GenericOperator hooks; the runtime checks for them per
// partition instance.
type (
	// WindowEndAware operators are told about streaming-window
	// boundaries: EndWindow runs when the upstream window marker
	// arrives, before the window's batch publishes downstream, so
	// emissions ride in the closing window. Stateful windowed operators
	// flush watermark-ready panes here.
	WindowEndAware interface {
		EndWindow(emit func([]byte) error) error
	}
	// StreamFlusher operators emit remaining state when their input
	// stream ends (all upstream partitions finished — the
	// broker.EndOfInput contract propagated through the DAG).
	StreamFlusher interface {
		EndStream(emit func([]byte) error) error
	}
	// SenderAware operators are told which upstream partition published
	// each tuple; the runtime calls ProcessFrom instead of Process. The
	// index is global over the operator's input streams (stream order,
	// then partition order) — the same space watermark control events
	// are tagged with.
	SenderAware interface {
		ProcessFrom(from int, tuple []byte, emit func([]byte) error) error
	}
	// WatermarkAware operators receive the partition's combined input
	// watermark — the minimum over all upstream senders' control
	// events — whenever it advances. Stateful event-time operators fire
	// their watermark-ready panes here; emissions ride in the currently
	// open streaming window.
	WatermarkAware interface {
		OnWatermark(w time.Time, emit func([]byte) error) error
	}
	// WatermarkEmitter operators generate event-time watermarks (the
	// timestamp assigner, where event time enters the DAG). After each
	// processed batch the runtime reads CurrentWatermark and publishes
	// advances downstream as control events — always behind the tuples
	// they cover, never ahead of them.
	WatermarkEmitter interface {
		CurrentWatermark() time.Time
	}
)

// OutputOperator consumes tuples.
type OutputOperator interface {
	// Process handles one tuple.
	Process(tuple []byte) error
	// EndWindow marks a streaming-window boundary; output operators
	// flush here (the Kafka output flushes its producer).
	EndWindow() error
	Teardown() error
}

// Factories build one operator instance per partition.
type (
	InputFactory   func(ctx OperatorContext) (InputOperator, error)
	GenericFactory func(ctx OperatorContext) (GenericOperator, error)
	OutputFactory  func(ctx OperatorContext) (OutputOperator, error)
)

type opKind int

const (
	kindInput opKind = iota + 1
	kindGeneric
	kindOutput
)

type opDef struct {
	name    string
	kind    opKind
	input   InputFactory
	generic GenericFactory
	output  OutputFactory

	// partitions overrides the launch-level parallelism for this
	// operator when positive (set via SetOperatorPartitions).
	partitions int

	inStreams  []*streamDef
	outStreams []*streamDef

	stats *OperatorStats
}

type streamDef struct {
	name     string
	from, to string
	perTuple bool
	// keyFn, when set, routes tuples to downstream partitions by key
	// hash instead of round-robin, so all tuples with equal keys reach
	// the same partition (keyed partitioning for stateful operators).
	keyFn func(tuple []byte) ([]byte, error)
}

// Application is an Apex application DAG under construction.
type Application struct {
	name    string
	ops     map[string]*opDef
	order   []string
	streams map[string]*streamDef
	sorder  []string
	err     error
}

// NewApplication returns an empty application DAG.
func NewApplication(name string) *Application {
	return &Application{
		name:    name,
		ops:     make(map[string]*opDef),
		streams: make(map[string]*streamDef),
	}
}

// Name returns the application name.
func (a *Application) Name() string { return a.name }

func (a *Application) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

func (a *Application) addOp(name string, def *opDef) {
	if name == "" {
		a.fail(errors.New("apex: empty operator name"))
		return
	}
	if _, ok := a.ops[name]; ok {
		a.fail(fmt.Errorf("%w: %q", ErrDuplicateOperator, name))
		return
	}
	def.name = name
	def.stats = &OperatorStats{Name: name}
	a.ops[name] = def
	a.order = append(a.order, name)
}

// AddInput adds a source operator.
func (a *Application) AddInput(name string, factory InputFactory) *Application {
	if factory == nil {
		a.fail(fmt.Errorf("apex: input %q: nil factory", name))
	}
	a.addOp(name, &opDef{kind: kindInput, input: factory})
	return a
}

// AddOperator adds a transforming operator.
func (a *Application) AddOperator(name string, factory GenericFactory) *Application {
	if factory == nil {
		a.fail(fmt.Errorf("apex: operator %q: nil factory", name))
	}
	a.addOp(name, &opDef{kind: kindGeneric, generic: factory})
	return a
}

// AddOutput adds a sink operator.
func (a *Application) AddOutput(name string, factory OutputFactory) *Application {
	if factory == nil {
		a.fail(fmt.Errorf("apex: output %q: nil factory", name))
	}
	a.addOp(name, &opDef{kind: kindOutput, output: factory})
	return a
}

// AddStream connects the output port of from to the input port of to.
func (a *Application) AddStream(name, from, to string) *Application {
	if name == "" {
		a.fail(errors.New("apex: empty stream name"))
		return a
	}
	if _, ok := a.streams[name]; ok {
		a.fail(fmt.Errorf("apex: duplicate stream %q", name))
		return a
	}
	src, ok := a.ops[from]
	if !ok {
		a.fail(fmt.Errorf("%w: %q", ErrUnknownOperator, from))
		return a
	}
	dst, ok := a.ops[to]
	if !ok {
		a.fail(fmt.Errorf("%w: %q", ErrUnknownOperator, to))
		return a
	}
	if src.kind == kindOutput {
		a.fail(fmt.Errorf("%w: stream %q leaves output operator %q", ErrInvalidTopology, name, from))
		return a
	}
	if dst.kind == kindInput {
		a.fail(fmt.Errorf("%w: stream %q enters input operator %q", ErrInvalidTopology, name, to))
		return a
	}
	s := &streamDef{name: name, from: from, to: to}
	a.streams[name] = s
	a.sorder = append(a.sorder, name)
	src.outStreams = append(src.outStreams, s)
	dst.inStreams = append(dst.inStreams, s)
	return a
}

// SetStreamPerTuple switches a stream between windowed batch publishing
// (false, the engine default) and per-tuple publishing (true, the mode
// the Beam runner's output path runs in).
func (a *Application) SetStreamPerTuple(name string, perTuple bool) *Application {
	s, ok := a.streams[name]
	if !ok {
		a.fail(fmt.Errorf("apex: unknown stream %q", name))
		return a
	}
	s.perTuple = perTuple
	return a
}

// SetStreamKeyed switches a stream from round-robin tuple distribution
// to keyed partitioning: the key extractor runs on every published
// tuple and its hash selects the downstream partition, so operators
// holding keyed state (windowed aggregations) see every record of a key
// in one partition. A nil key restores round-robin.
func (a *Application) SetStreamKeyed(name string, key func(tuple []byte) ([]byte, error)) *Application {
	s, ok := a.streams[name]
	if !ok {
		a.fail(fmt.Errorf("apex: unknown stream %q", name))
		return a
	}
	s.keyFn = key
	return a
}

// SetOperatorPartitions overrides the partition count of one operator,
// the equivalent of a per-operator partitioning DAG attribute. Zero
// restores the launch default. Output operators writing a single-
// partition Kafka topic are typically pinned to one partition.
func (a *Application) SetOperatorPartitions(name string, n int) *Application {
	op, ok := a.ops[name]
	if !ok {
		a.fail(fmt.Errorf("%w: %q", ErrUnknownOperator, name))
		return a
	}
	if n < 0 {
		a.fail(fmt.Errorf("apex: operator %q: negative partition count %d", name, n))
		return a
	}
	op.partitions = n
	return a
}

// RequiredVCores reports the vcores a launch at the given parallelism
// allocates: one container per operator partition (honouring per-
// operator overrides) plus the STRAM. Callers provisioning a cluster
// for the application size it with this.
func (a *Application) RequiredVCores(parallelism int) int {
	if parallelism <= 0 {
		parallelism = 1
	}
	total := 1
	for _, name := range a.order {
		if p := a.ops[name].partitions; p > 0 {
			total += p
		} else {
			total += parallelism
		}
	}
	return total
}

// validate checks the DAG for structural errors.
func (a *Application) validate() error {
	if a.err != nil {
		return a.err
	}
	if len(a.ops) == 0 {
		return fmt.Errorf("%w: empty application", ErrInvalidTopology)
	}
	var hasInput, hasOutput bool
	for _, name := range a.order {
		op := a.ops[name]
		switch op.kind {
		case kindInput:
			hasInput = true
			if len(op.outStreams) == 0 {
				return fmt.Errorf("%w: input %q has no output stream", ErrInvalidTopology, name)
			}
		case kindOutput:
			hasOutput = true
			if len(op.inStreams) == 0 {
				return fmt.Errorf("%w: output %q has no input stream", ErrInvalidTopology, name)
			}
		case kindGeneric:
			if len(op.inStreams) == 0 || len(op.outStreams) == 0 {
				return fmt.Errorf("%w: operator %q is not fully connected", ErrInvalidTopology, name)
			}
		}
	}
	if !hasInput {
		return fmt.Errorf("%w: no input operator", ErrInvalidTopology)
	}
	if !hasOutput {
		return fmt.Errorf("%w: no output operator", ErrInvalidTopology)
	}
	if _, err := a.Plan(1); err != nil {
		return err
	}
	return nil
}

// Plan renders the logical DAG with the given partition count per
// operator, for inspection and plan figures.
func (a *Application) Plan(parallelism int) (*dag.Graph, error) {
	if parallelism <= 0 {
		return nil, fmt.Errorf("apex: parallelism must be positive, got %d", parallelism)
	}
	g := dag.New()
	for _, name := range a.order {
		op := a.ops[name]
		kind := dag.KindOperator
		switch op.kind {
		case kindInput:
			kind = dag.KindSource
		case kindOutput:
			kind = dag.KindSink
		}
		if err := g.AddNode(dag.Node{ID: name, Name: name, Kind: kind, Parallelism: parallelism}); err != nil {
			return nil, err
		}
	}
	for _, sname := range a.sorder {
		s := a.streams[sname]
		if err := g.AddEdge(s.from, s.to); err != nil {
			return nil, err
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidTopology, err)
	}
	return g, nil
}
