package apex

import (
	"testing"
	"time"

	"beambench/internal/broker"
	"beambench/internal/yarn"
)

// TestKafkaInputConsumesConcurrentlyFilledTopic pins the end-of-input
// contract: given the target record count, the input operator must keep
// reading across streaming windows while the topic is still being
// filled and terminate once the target is drained.
func TestKafkaInputConsumesConcurrentlyFilledTopic(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	input := tuples(300)
	senderDone := make(chan error, 1)
	go func() {
		p, err := b.NewProducer(broker.ProducerConfig{BatchSize: 7})
		if err != nil {
			senderDone <- err
			return
		}
		for i, v := range input {
			if i%25 == 0 {
				time.Sleep(time.Millisecond)
			}
			if err := p.Send("in", nil, v); err != nil {
				senderDone <- err
				return
			}
		}
		senderDone <- p.Close()
	}()

	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	app := NewApplication("stream").
		AddInput("kafkaInput", KafkaInput(b, "in", int64(len(input)))).
		AddOperator("identity", PassThrough()).
		AddOutput("collect", CollectOutput(out)).
		AddStream("s1", "kafkaInput", "identity").
		AddStream("s2", "identity", "collect")
	res := runApp(t, cluster, app, LaunchConfig{WindowTuples: 50})
	if err := <-senderDone; err != nil {
		t.Fatal(err)
	}

	if out.Len() != len(input) {
		t.Fatalf("collected %d tuples, want %d", out.Len(), len(input))
	}
	got := out.Strings()
	for i, v := range input {
		if got[i] != string(v) {
			t.Fatalf("tuple %d = %q, want %q (order broken)", i, got[i], v)
		}
	}
	in, ok := res.OperatorReportFor("kafkaInput")
	if !ok || in.TuplesOut != int64(len(input)) {
		t.Errorf("kafkaInput TuplesOut = %+v, want %d", in, len(input))
	}
	// The sender's pauses spread arrival over many 50-tuple windows, so
	// the input must have cut several windows rather than one bulk read.
	if in.Windows < 2 {
		t.Errorf("kafkaInput Windows = %d, want several (consumed while filling)", in.Windows)
	}
}

// TestKafkaInputTargetWithIdleOperatorPartition: at operator
// parallelism 2 with a single Kafka partition, the partition owning no
// assignment must report done immediately instead of blocking on a
// topic that is still filling.
func TestKafkaInputTargetWithIdleOperatorPartition(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	input := tuples(120)
	senderDone := make(chan error, 1)
	go func() {
		p, err := b.NewProducer(broker.ProducerConfig{BatchSize: 5})
		if err != nil {
			senderDone <- err
			return
		}
		for i, v := range input {
			if i%30 == 0 {
				time.Sleep(time.Millisecond)
			}
			if err := p.Send("in", nil, v); err != nil {
				senderDone <- err
				return
			}
		}
		senderDone <- p.Close()
	}()

	cluster := newYarn(t, yarn.ClusterConfig{})
	out := NewTupleCollector()
	app := NewApplication("stream-p2").
		AddInput("kafkaInput", KafkaInput(b, "in", int64(len(input)))).
		AddOperator("identity", PassThrough()).
		AddOutput("collect", CollectOutput(out)).
		AddStream("s1", "kafkaInput", "identity").
		AddStream("s2", "identity", "collect")
	runApp(t, cluster, app, LaunchConfig{Parallelism: 2, WindowTuples: 50})
	if err := <-senderDone; err != nil {
		t.Fatal(err)
	}
	if out.Len() != len(input) {
		t.Fatalf("collected %d tuples, want %d", out.Len(), len(input))
	}
}
