package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{42}, want: 42},
		{name: "pair", give: []float64{1, 3}, want: 2},
		{name: "negative", give: []float64{-1, 1}, want: 0},
		{name: "paper identity flink p1", give: []float64{6.25, 21.56, 3.42, 3.31, 3.73, 12.69, 3.90, 3.96, 3.42, 3.01}, want: 6.525},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); !almostEqual(got, tt.want) {
				t.Errorf("Mean(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestStdDev(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "single", give: []float64{5}, want: 0},
		{name: "constant", give: []float64{2, 2, 2, 2}, want: 0},
		{name: "known", give: []float64{2, 4, 4, 4, 5, 5, 7, 9}, want: math.Sqrt(32.0 / 7.0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := StdDev(tt.give); !almostEqual(got, tt.want) {
				t.Errorf("StdDev(%v) = %v, want %v", tt.give, got, tt.want)
			}
		})
	}
}

func TestRelStdDev(t *testing.T) {
	if got := RelStdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("RelStdDev of constant sample = %v, want 0", got)
	}
	if got := RelStdDev(nil); got != 0 {
		t.Errorf("RelStdDev(nil) = %v, want 0", got)
	}
	// Scale invariance: cv(k*x) == cv(x) for k > 0.
	xs := []float64{1, 2, 3, 4}
	scaled := []float64{10, 20, 30, 40}
	if !almostEqual(RelStdDev(xs), RelStdDev(scaled)) {
		t.Errorf("RelStdDev not scale-invariant: %v vs %v", RelStdDev(xs), RelStdDev(scaled))
	}
}

func TestMinMax(t *testing.T) {
	if _, err := Min(nil); err == nil {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err == nil {
		t.Error("Max(nil) should error")
	}
	xs := []float64{3, -1, 7, 0}
	mn, err := Min(xs)
	if err != nil || mn != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", mn, err)
	}
	mx, err := Max(xs)
	if err != nil || mx != 7 {
		t.Errorf("Max = %v, %v; want 7, nil", mx, err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q    float64
		want float64
	}{
		{q: 0, want: 1},
		{q: 0.25, want: 2},
		{q: 0.5, want: 3},
		{q: 1, want: 5},
		{q: 0.125, want: 1.5},
	}
	for _, tt := range tests {
		got, err := Quantile(xs, tt.q)
		if err != nil {
			t.Fatalf("Quantile(%v) error: %v", tt.q, err)
		}
		if !almostEqual(got, tt.want) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("Quantile(nil) should error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("Quantile(q=1.5) should error")
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("Quantile(q=-0.1) should error")
	}
	single, err := Quantile([]float64{9}, 0.3)
	if err != nil || single != 9 {
		t.Errorf("Quantile(single, 0.3) = %v, %v; want 9, nil", single, err)
	}
	// Quantile must not modify its input.
	unsorted := []float64{3, 1, 2}
	if _, err := Quantile(unsorted, 0.5); err != nil {
		t.Fatal(err)
	}
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Errorf("Quantile modified its input: %v", unsorted)
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("Summarize(nil) should error")
	}
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if !almostEqual(s.StdDev, 1) {
		t.Errorf("StdDev = %v, want 1", s.StdDev)
	}
	if !almostEqual(s.RelStdDev, 0.5) {
		t.Errorf("RelStdDev = %v, want 0.5", s.RelStdDev)
	}
}

func TestSlowdownFactor(t *testing.T) {
	tests := []struct {
		name    string
		beam    []float64
		native  []float64
		want    float64
		wantErr bool
	}{
		{name: "empty", beam: nil, native: nil, wantErr: true},
		{name: "length mismatch", beam: []float64{1}, native: []float64{1, 2}, wantErr: true},
		{name: "zero native", beam: []float64{1}, native: []float64{0}, wantErr: true},
		{name: "negative native", beam: []float64{1}, native: []float64{-1}, wantErr: true},
		{name: "identity", beam: []float64{3, 3}, native: []float64{3, 3}, want: 1},
		{name: "two parallelisms", beam: []float64{10, 20}, native: []float64{2, 4}, want: 5},
		{name: "speedup below one", beam: []float64{1, 1}, native: []float64{2, 2}, want: 0.5},
		// Paper Fig. 6/11 cross-check for Apex identity:
		// (237.53/3.35 + 241.01/5.71)/2 = 56.55... (paper rounds to 56.58
		// from unrounded raw data; we assert our formula on the rounded
		// figure inputs).
		{name: "paper apex identity", beam: []float64{237.53, 241.01}, native: []float64{3.35, 5.71}, want: (237.53/3.35 + 241.01/5.71) / 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := SlowdownFactor(tt.beam, tt.native)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want) {
				t.Errorf("SlowdownFactor = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMeanPropertyShiftInvariance(t *testing.T) {
	// Mean(xs + c) == Mean(xs) + c for any finite sample.
	f := func(raw []int16, shift int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			shifted[i] = float64(v) + float64(shift)
		}
		return almostEqual(Mean(shifted), Mean(xs)+float64(shift))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStdDevPropertyShiftInvariance(t *testing.T) {
	// StdDev(xs + c) == StdDev(xs).
	f := func(raw []int16, shift int16) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			shifted[i] = float64(v) + float64(shift)
		}
		return math.Abs(StdDev(shifted)-StdDev(xs)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantilePropertyBounds(t *testing.T) {
	// Min <= Quantile(q) <= Max for all q in [0,1].
	f := func(raw []int16, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q := float64(qRaw) / 255.0
		got, err := Quantile(xs, q)
		if err != nil {
			return false
		}
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		return got >= mn-1e-9 && got <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 15},    // rank clamps to 1
		{0.05, 15}, // ceil(0.25) = 1
		{0.30, 20}, // ceil(1.5) = 2
		{0.40, 20}, // ceil(2.0) = 2
		{0.50, 35}, // ceil(2.5) = 3
		{0.95, 50}, // ceil(4.75) = 5
		{1, 50},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty input error = %v, want ErrEmpty", err)
	}
	for _, q := range []float64{-0.1, 1.1} {
		if _, err := Percentile([]float64{1}, q); err == nil {
			t.Errorf("Percentile(q=%v) succeeded, want error", q)
		}
	}
}

// TestPercentileIsElement: the nearest-rank percentile is always an
// element of the input (the property Quantile's interpolation lacks).
func TestPercentileIsElement(t *testing.T) {
	f := func(raw []uint8, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		q := float64(qRaw) / 255.0
		got, err := Percentile(xs, q)
		if err != nil {
			return false
		}
		for _, x := range xs {
			if x == got {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPercentileDoesNotMutate pins the documented no-mutation contract.
func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}
