// Package stats provides the summary statistics used by the benchmark:
// arithmetic means, (relative) standard deviations and the slowdown-factor
// formula from Hesse et al., ICDCS 2019, Section III-C3.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (Bessel-corrected, n-1
// divisor) of xs. It returns 0 for samples with fewer than two elements.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// RelStdDev returns the coefficient of variation StdDev(xs)/Mean(xs),
// the quantity plotted in Figure 10 of the paper. It returns 0 when the
// mean is zero to avoid dividing by zero.
func RelStdDev(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Percentile returns the exact q-quantile (0 <= q <= 1) of xs using the
// nearest-rank definition: the smallest element whose rank r satisfies
// r >= ceil(q*n). Unlike Quantile it never interpolates, so the result
// is always an element of xs — the definition quantile sketches are
// verified against. The input is not modified.
func Percentile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1], nil
}

// Summary condenses a sample into the statistics reported by the harness.
type Summary struct {
	N         int
	Mean      float64
	StdDev    float64
	RelStdDev float64
	Min       float64
	Max       float64
}

// Summarize computes a Summary for xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	mn, err := Min(xs)
	if err != nil {
		return Summary{}, err
	}
	mx, err := Max(xs)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:         len(xs),
		Mean:      Mean(xs),
		StdDev:    StdDev(xs),
		RelStdDev: RelStdDev(xs),
		Min:       mn,
		Max:       mx,
	}, nil
}

// SlowdownFactor implements sf(dsps, query) from Section III-C3:
//
//	sf = (1/N_p) * Σ_p  t̄(Beam, p) / t̄(native, p)
//
// beamMeans[i] and nativeMeans[i] are the mean execution times for the
// i-th parallelism factor. Both slices must have equal, non-zero length
// and every native mean must be positive.
func SlowdownFactor(beamMeans, nativeMeans []float64) (float64, error) {
	if len(beamMeans) == 0 || len(beamMeans) != len(nativeMeans) {
		return 0, fmt.Errorf("stats: mismatched slowdown inputs: %d beam vs %d native",
			len(beamMeans), len(nativeMeans))
	}
	var sum float64
	for i, b := range beamMeans {
		n := nativeMeans[i]
		if n <= 0 {
			return 0, fmt.Errorf("stats: non-positive native mean %v at parallelism index %d", n, i)
		}
		sum += b / n
	}
	return sum / float64(len(beamMeans)), nil
}
