package beam

import (
	"fmt"
	"math"
	"time"
)

// Window is an element grouping interval for aggregations.
type Window interface {
	// MaxTimestamp is the window's inclusive upper bound.
	MaxTimestamp() time.Time
	// Key identifies the window for grouping.
	Key() string
}

// GlobalWindow is the single window covering all time.
type GlobalWindow struct{}

// MaxTimestamp implements Window.
func (GlobalWindow) MaxTimestamp() time.Time {
	return time.Unix(0, math.MaxInt64)
}

// Key implements Window.
func (GlobalWindow) Key() string { return "global" }

// IntervalWindow is a half-open time interval [Start, End).
type IntervalWindow struct {
	Start time.Time
	End   time.Time
}

// MaxTimestamp implements Window.
func (w IntervalWindow) MaxTimestamp() time.Time {
	return w.End.Add(-time.Nanosecond)
}

// Key implements Window.
func (w IntervalWindow) Key() string {
	return fmt.Sprintf("[%d,%d)", w.Start.UnixNano(), w.End.UnixNano())
}

// WindowFn assigns elements to windows.
type WindowFn interface {
	// Name identifies the strategy.
	Name() string
	// AssignWindows returns the windows for an element timestamp.
	AssignWindows(ts time.Time) []Window
}

// GlobalWindows assigns every element to the global window.
type GlobalWindows struct{}

// Name implements WindowFn.
func (GlobalWindows) Name() string { return "GlobalWindows" }

// AssignWindows implements WindowFn.
func (GlobalWindows) AssignWindows(time.Time) []Window {
	return []Window{GlobalWindow{}}
}

// FixedWindows assigns elements to fixed-size tumbling windows.
type FixedWindows struct {
	Size time.Duration
}

// Name implements WindowFn.
func (f FixedWindows) Name() string { return fmt.Sprintf("FixedWindows(%v)", f.Size) }

// AssignWindows implements WindowFn.
func (f FixedWindows) AssignWindows(ts time.Time) []Window {
	if f.Size <= 0 {
		return []Window{GlobalWindow{}}
	}
	start := ts.Truncate(f.Size)
	return []Window{IntervalWindow{Start: start, End: start.Add(f.Size)}}
}

// SlidingWindows assigns elements to overlapping windows of Size every
// Slide, aligned to the epoch. An element belongs to ceil(Size/Slide)
// windows (fewer near the epoch); Slide need not divide Size.
type SlidingWindows struct {
	Size, Slide time.Duration
}

// Name implements WindowFn.
func (f SlidingWindows) Name() string {
	return fmt.Sprintf("SlidingWindows(%v/%v)", f.Size, f.Slide)
}

// AssignWindows implements WindowFn: every window [start, start+Size)
// with start aligned to Slide and start in (ts−Size, ts], ascending by
// start.
func (f SlidingWindows) AssignWindows(ts time.Time) []Window {
	if f.Size <= 0 || f.Slide <= 0 {
		return []Window{GlobalWindow{}}
	}
	var out []Window
	for start := ts.Truncate(f.Slide); start.After(ts.Add(-f.Size)); start = start.Add(-f.Slide) {
		out = append(out, IntervalWindow{Start: start, End: start.Add(f.Size)})
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Sessions assigns each element a proto-session [ts, ts+Gap) that a
// merging grouping (graphx.GBKState) coalesces with every overlapping
// or abutting session of the same key — gap-based session windows.
type Sessions struct {
	Gap time.Duration
}

// Name implements WindowFn.
func (f Sessions) Name() string { return fmt.Sprintf("Sessions(%v)", f.Gap) }

// AssignWindows implements WindowFn: the element's proto-session.
func (f Sessions) AssignWindows(ts time.Time) []Window {
	if f.Gap <= 0 {
		return []Window{GlobalWindow{}}
	}
	return []Window{IntervalWindow{Start: ts, End: ts.Add(f.Gap)}}
}

// Trigger controls when aggregations over unbounded global windows may
// fire; the SDK supports element-count triggers.
type Trigger interface {
	// Name identifies the trigger.
	Name() string
	// FireAfter reports the element count per key after which a pane
	// fires; zero means fire only at end of input.
	FireAfter() int
}

// AfterCount fires a pane for a key after every N elements.
type AfterCount struct {
	N int
}

// Name implements Trigger.
func (t AfterCount) Name() string { return fmt.Sprintf("AfterCount(%d)", t.N) }

// FireAfter implements Trigger.
func (t AfterCount) FireAfter() int { return t.N }

// EventTimeFn extracts an element's event timestamp from the element
// itself (e.g. a time column of the record payload). Engine runners
// erase flow timestamps at coder boundaries, so deterministic event-time
// windowing requires the time to be derivable from the element — exactly
// what a real pipeline does by re-stamping records with WithTimestamps
// before windowing.
type EventTimeFn func(elem any) (time.Time, error)

// WindowingStrategy combines a window fn with an optional trigger and,
// for event-time windowing, the element-derived timestamp extractor plus
// the stream's assumed out-of-orderness bound.
type WindowingStrategy struct {
	Fn      WindowFn
	Trigger Trigger
	// EventTime extracts event timestamps from elements. Required for
	// non-global windowing on the engine runners (which otherwise reject
	// the strategy); for a KV collection feeding GroupByKey it is applied
	// to the KV value. Nil falls back to the flow timestamp on the direct
	// runner.
	EventTime EventTimeFn
	// Bound is the watermark generator's assumed maximum event-time
	// out-of-orderness: panes fire once the watermark (max event time
	// seen minus Bound) passes a window's end, and always at end of
	// input.
	Bound time.Duration
}

// DefaultWindowing is the global-windows strategy without a trigger.
func DefaultWindowing() WindowingStrategy {
	return WindowingStrategy{Fn: GlobalWindows{}}
}

// IsGlobal reports whether the strategy uses global windows.
func (w WindowingStrategy) IsGlobal() bool {
	_, ok := w.Fn.(GlobalWindows)
	return ok || w.Fn == nil
}

// Key canonicalizes the strategy (window fn plus trigger) so transforms
// like Flatten can compare the windowing of their inputs.
func (w WindowingStrategy) Key() string {
	name := GlobalWindows{}.Name()
	if w.Fn != nil {
		name = w.Fn.Name()
	}
	if w.Trigger != nil {
		return name + "+" + w.Trigger.Name()
	}
	return name
}

// Triggering returns a copy of the strategy with the given trigger.
func (w WindowingStrategy) Triggering(t Trigger) WindowingStrategy {
	w.Trigger = t
	return w
}

// WithEventTime returns a copy of the strategy with the given
// element-derived timestamp extractor and out-of-orderness bound.
func (w WindowingStrategy) WithEventTime(fn EventTimeFn, bound time.Duration) WindowingStrategy {
	w.EventTime = fn
	w.Bound = bound
	return w
}
