package graphx

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"beambench/internal/beam"
	"beambench/internal/watermark"
)

var gbkEpoch = time.Date(2006, time.March, 1, 0, 0, 0, 0, time.UTC)

func kvCoder() beam.KVCoder {
	return beam.KVCoder{Key: beam.StringUTF8Coder{}, Value: beam.BytesCoder{}}
}

// encodeKV builds the wire form of one key/value pair.
func encodeKV(t *testing.T, key, value string) []byte {
	t.Helper()
	b, err := kvCoder().Encode(beam.KV{Key: key, Value: []byte(value)})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// mustDecodeValue recovers the value payload of an encoded KV record.
func mustDecodeValue(t *testing.T, rec []byte) string {
	t.Helper()
	elem, err := kvCoder().Decode(rec)
	if err != nil {
		t.Fatal(err)
	}
	return string(elem.(beam.KV).Value.([]byte))
}

// valueEventTime reads "<seconds>|payload" values as event times.
func valueEventTime(elem any) (time.Time, error) {
	rec, ok := elem.([]byte)
	if !ok {
		return time.Time{}, fmt.Errorf("element %T is not []byte", elem)
	}
	var sec int
	if _, err := fmt.Sscanf(string(rec), "%d|", &sec); err != nil {
		return time.Time{}, err
	}
	return gbkEpoch.Add(time.Duration(sec) * time.Second), nil
}

func windowedState(t *testing.T, bound time.Duration) *GBKState {
	t.Helper()
	g, err := NewGBKState(GBKConfig{
		Windowing: beam.WindowingStrategy{
			Fn:        beam.FixedWindows{Size: time.Second},
			EventTime: valueEventTime,
			Bound:     bound,
		},
		Input:  kvCoder(),
		Output: beam.GroupedCoder{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func decodePanes(t *testing.T, wires [][]byte) []string {
	t.Helper()
	out := make([]string, 0, len(wires))
	for _, w := range wires {
		elem, err := (beam.GroupedCoder{}).Decode(w)
		if err != nil {
			t.Fatal(err)
		}
		g := elem.(beam.Grouped)
		label := "global"
		if iw, ok := g.Window.(beam.IntervalWindow); ok {
			label = fmt.Sprint(iw.Start.Unix())
		}
		out = append(out, fmt.Sprintf("%s/%v=%d", label, g.Key, len(g.Values)))
	}
	return out
}

func TestGBKStateWindowedFiresOnWatermarkThenFlush(t *testing.T) {
	g := windowedState(t, 0)
	if !g.Windowed() {
		t.Fatal("state not in event-time mode")
	}
	var fired [][]byte
	emit := func(w []byte) error { fired = append(fired, w); return nil }

	// Two keys in window 0, one in window 2. The executable generates no
	// watermark of its own: the watermark arrives as control events (here
	// what a bound-0 assigner upstream would stamp after each record),
	// and must not release window 2 before flush.
	for _, rec := range [][]byte{
		encodeKV(t, "u1", "0|a"),
		encodeKV(t, "u2", "0|b"),
		encodeKV(t, "u1", "0|c"),
		encodeKV(t, "u3", "2|d"),
	} {
		if err := g.Process(rec, emit); err != nil {
			t.Fatal(err)
		}
		et, err := valueEventTime([]byte(mustDecodeValue(t, rec)))
		if err != nil {
			t.Fatal(err)
		}
		if err := g.AdvanceWatermark(et, emit); err != nil {
			t.Fatal(err)
		}
	}
	got := decodePanes(t, fired)
	want := []string{
		fmt.Sprintf("%d/u1=2", gbkEpoch.Unix()),
		fmt.Sprintf("%d/u2=1", gbkEpoch.Unix()),
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("watermark-fired panes = %v, want %v", got, want)
	}

	fired = nil
	if err := g.Flush(emit); err != nil {
		t.Fatal(err)
	}
	got = decodePanes(t, fired)
	want = []string{fmt.Sprintf("%d/u3=1", gbkEpoch.Add(2*time.Second).Unix())}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("flush panes = %v, want %v", got, want)
	}
}

func TestGBKStateBoundDelaysFiring(t *testing.T) {
	g := windowedState(t, 2*time.Second)
	var fired [][]byte
	emit := func(w []byte) error { fired = append(fired, w); return nil }
	// Events up to t=1s: the upstream assigner's watermark (max seen minus
	// the 2s bound) is 1s-2s < window end (1s) -> nothing fires.
	gen := watermark.NewGenerator(2 * time.Second)
	if err := g.Process(encodeKV(t, "u1", "0|a"), emit); err != nil {
		t.Fatal(err)
	}
	gen.Observe(gbkEpoch)
	if err := g.Process(encodeKV(t, "u1", "1|b"), emit); err != nil {
		t.Fatal(err)
	}
	gen.Observe(gbkEpoch.Add(time.Second))
	if err := g.AdvanceWatermark(gen.Current(), emit); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 0 {
		t.Fatalf("panes fired before the bound allowed: %v", decodePanes(t, fired))
	}
	// Event at t=3s: watermark = 1s -> window [0,1) fires.
	if err := g.Process(encodeKV(t, "u2", "3|c"), emit); err != nil {
		t.Fatal(err)
	}
	gen.Observe(gbkEpoch.Add(3 * time.Second))
	if err := g.AdvanceWatermark(gen.Current(), emit); err != nil {
		t.Fatal(err)
	}
	if got := decodePanes(t, fired); len(got) != 1 || got[0] != fmt.Sprintf("%d/u1=1", gbkEpoch.Unix()) {
		t.Fatalf("panes = %v, want window 0 / u1", got)
	}
}

func TestGBKStateGlobalTriggerAndFlush(t *testing.T) {
	g, err := NewGBKState(GBKConfig{
		Windowing: beam.DefaultWindowing().Triggering(beam.AfterCount{N: 2}),
		Input:     kvCoder(),
		Output:    beam.GroupedCoder{},
	})
	if err != nil {
		t.Fatal(err)
	}
	var fired [][]byte
	emit := func(w []byte) error { fired = append(fired, w); return nil }
	for _, rec := range [][]byte{
		encodeKV(t, "a", "0|x"), encodeKV(t, "a", "0|y"), encodeKV(t, "b", "0|z"),
	} {
		if err := g.Process(rec, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AdvanceWatermark(watermark.EndOfTime, emit); err != nil { // no-op in global mode
		t.Fatal(err)
	}
	if err := g.Flush(emit); err != nil {
		t.Fatal(err)
	}
	got := decodePanes(t, fired)
	want := []string{"global/a=2", "global/b=1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("panes = %v, want %v", got, want)
	}
}

func TestGBKStateRejectsUnsupportedWindowing(t *testing.T) {
	// Non-global windowing without an event-time extractor.
	_, err := NewGBKState(GBKConfig{
		Windowing: beam.WindowingStrategy{Fn: beam.FixedWindows{Size: time.Second}},
		Input:     kvCoder(),
		Output:    beam.GroupedCoder{},
	})
	if !errors.Is(err, beam.ErrUnsupported) {
		t.Errorf("missing event-time fn = %v, want beam.ErrUnsupported", err)
	}
	// Zero window size.
	_, err = NewGBKState(GBKConfig{
		Windowing: beam.WindowingStrategy{Fn: beam.FixedWindows{}, EventTime: valueEventTime},
		Input:     kvCoder(),
		Output:    beam.GroupedCoder{},
	})
	if !errors.Is(err, beam.ErrUnsupported) {
		t.Errorf("zero window size = %v, want beam.ErrUnsupported", err)
	}
}

func TestEncodedKVKey(t *testing.T) {
	rec := encodeKV(t, "user42", "0|payload")
	key, err := EncodedKVKey(rec)
	if err != nil {
		t.Fatal(err)
	}
	if string(key) != "user42" {
		t.Errorf("key = %q, want user42", key)
	}
	if _, err := EncodedKVKey([]byte{0xff}); err == nil {
		t.Error("malformed encoding accepted")
	}
}
