package graphx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"beambench/internal/beam"
	"beambench/internal/simcost"
	"beambench/internal/watermark"
)

// ErrUnsupportedWindowing marks GroupByKey windowing shapes the shared
// executable cannot run: a non-global window fn other than FixedWindows,
// or non-global windowing without an element-derived event-time
// extractor (deterministic windowing is impossible once coder boundaries
// erased the flow timestamps). It wraps beam.ErrUnsupported so runner
// and harness callers can match it generically.
var ErrUnsupportedWindowing = fmt.Errorf("%w: GroupByKey windowing", beam.ErrUnsupported)

// GBKConfig parameterizes the shared GroupByKey executable.
type GBKConfig struct {
	// Windowing is the input collection's strategy: global windows (with
	// an optional count trigger) or event-time FixedWindows with an
	// EventTime extractor.
	Windowing beam.WindowingStrategy
	// Input is the KV boundary coder of the consumed collection.
	Input beam.KVCoder
	// Output encodes the emitted Grouped panes.
	Output beam.Coder
	// Costs is the runner's latency model; Charge receives the modeled
	// durations (nil disables charging).
	Costs  simcost.Costs
	Charge func(time.Duration)
	// Inputs is the number of distinct ordered upstream streams feeding
	// this instance (0 or 1: a single stream). In event-time mode the
	// executable keeps one watermark generator per input and fires on
	// their minimum (watermark.MergedGenerator), so an instance fed by
	// several racing upstream partitions never fires a pane whose
	// records a lagging upstream still holds. Callers with several
	// inputs must use ProcessFrom. The per-input generators are sound
	// only when each input stream is itself event-time ordered (up to
	// Windowing.Bound); see Conservative for topologies that cannot
	// guarantee that.
	Inputs int
	// Conservative disables observation-based watermark advancement:
	// the watermark claims no progress while records flow and jumps to
	// end-of-time only at Flush (the broker.EndOfInput finalization).
	// This is the sound watermark for an instance whose input streams
	// are unordered merges with unbounded disorder — e.g. the Apex
	// runner's keyed stream when intermediate multi-partition stages
	// have re-interleaved the records — where any bounded
	// out-of-orderness assumption could fire a pane before all its
	// records arrived. Panes then fire exactly once, complete, at end
	// of input.
	Conservative bool
}

// GBKState is the stateful GroupByKey executable every engine runner
// deploys, sharing one pane-firing semantics across Flink, Spark and
// Apex (and matching the direct runner's reference output):
//
//   - Global windows: values group per key; an AfterCount trigger fires
//     a key's pane every N values, and Flush emits the remaining groups
//     in first-seen key order — the pre-existing bounded behaviour.
//   - Event-time FixedWindows: each element's window is derived from the
//     element itself (Windowing.EventTime applied to the KV value); a
//     per-instance watermark generator with the strategy's
//     out-of-orderness bound drives pane firing. FireReady — called by
//     each engine at its natural boundary (per record on tuple-at-a-time
//     Flink, per micro-batch on Spark, per streaming window on Apex) —
//     emits every window the watermark has passed, ascending by window
//     start with keys in first-seen order; Flush finalizes the watermark
//     (the source met broker.EndOfInput) and fires the rest in the same
//     order. The firing order depends only on the record arrival order,
//     which is what makes the engines byte-identical on ordered inputs.
//
// A GBKState instance is owned by one engine subtask/partition; keyed
// routing (all records of a key reaching the same instance) is the
// engine's responsibility.
type GBKState struct {
	cfg      GBKConfig
	windowed bool

	// Global-window mode.
	fireAfter int
	groups    map[string]*globalGroup
	order     []string

	// Event-time mode.
	gen   *watermark.MergedGenerator
	state *watermark.TumblingState[windowAcc]
}

// globalGroup is one key's pending values in global-window mode.
type globalGroup struct {
	key    any
	values []any
}

// windowAcc is one (window, key) pane accumulator in event-time mode.
type windowAcc struct {
	key    any
	values []any
}

// NewGBKState validates the windowing shape and returns a fresh
// executable instance.
func NewGBKState(cfg GBKConfig) (*GBKState, error) {
	if cfg.Input.Key == nil || cfg.Input.Value == nil {
		return nil, errors.New("graphx: GroupByKey input is not KV-coded")
	}
	if cfg.Output == nil {
		return nil, errors.New("graphx: GroupByKey needs an output coder")
	}
	g := &GBKState{cfg: cfg}
	ws := cfg.Windowing
	if ws.IsGlobal() {
		if ws.Trigger != nil {
			g.fireAfter = ws.Trigger.FireAfter()
		}
		g.groups = make(map[string]*globalGroup)
		return g, nil
	}
	fixed, ok := ws.Fn.(beam.FixedWindows)
	if !ok {
		return nil, fmt.Errorf("%w: window fn %s", ErrUnsupportedWindowing, ws.Fn.Name())
	}
	if ws.EventTime == nil {
		return nil, fmt.Errorf("%w: non-global windowing without an event-time extractor", ErrUnsupportedWindowing)
	}
	state, err := watermark.NewTumblingState[windowAcc](fixed.Size)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedWindowing, err)
	}
	g.windowed = true
	g.gen = watermark.NewMergedGenerator(cfg.Inputs, ws.Bound)
	g.state = state
	return g, nil
}

// Windowed reports whether the instance runs in event-time mode.
func (g *GBKState) Windowed() bool { return g.windowed }

// Charge rebinds the cost sink. Engines whose task meters are scoped to
// a batch (Spark) rebind before each delivery; nil disables charging.
func (g *GBKState) Charge(fn func(time.Duration)) { g.cfg.Charge = fn }

func (g *GBKState) charge(d time.Duration) {
	if g.cfg.Charge != nil {
		g.cfg.Charge(d)
	}
}

// Process consumes one encoded KV record from a single-input stream;
// see ProcessFrom.
func (g *GBKState) Process(rec []byte, emit func([]byte) error) error {
	return g.ProcessFrom(0, rec, emit)
}

// ProcessFrom consumes one encoded KV record published by the given
// input stream. In event-time mode it only accumulates (observing the
// event time under that input's watermark); the engine decides when to
// FireReady. In global mode a count trigger may fire the key's pane
// immediately.
func (g *GBKState) ProcessFrom(input int, rec []byte, emit func([]byte) error) error {
	elem, err := g.cfg.Input.Decode(rec)
	if err != nil {
		return fmt.Errorf("graphx: GroupByKey decode: %w", err)
	}
	g.charge(g.cfg.Costs.CoderPerRecord)
	g.charge(g.cfg.Costs.BeamDoFnPerRecord)
	kv, ok := elem.(beam.KV)
	if !ok {
		return fmt.Errorf("graphx: GroupByKey element %T is not a KV", elem)
	}
	ks, err := beam.KeyString(kv.Key)
	if err != nil {
		return err
	}

	if g.windowed {
		et, err := g.cfg.Windowing.EventTime(kv.Value)
		if err != nil {
			return fmt.Errorf("graphx: GroupByKey event time: %w", err)
		}
		g.state.Upsert(et, ks, func(acc *windowAcc) {
			acc.key = kv.Key
			acc.values = append(acc.values, kv.Value)
		})
		if !g.cfg.Conservative {
			g.gen.Observe(input, et)
		}
		return nil
	}

	grp, ok := g.groups[ks]
	if !ok {
		grp = &globalGroup{key: kv.Key}
		g.groups[ks] = grp
		g.order = append(g.order, ks)
	}
	grp.values = append(grp.values, kv.Value)
	if g.fireAfter > 0 && len(grp.values) >= g.fireAfter {
		return g.emitGlobal(grp, emit)
	}
	return nil
}

// FireReady emits every event-time pane the current watermark has
// passed. It is a no-op in global-window mode, so engines can call it
// unconditionally at their batch or window boundaries.
func (g *GBKState) FireReady(emit func([]byte) error) error {
	if !g.windowed {
		return nil
	}
	return g.state.FireReady(g.gen.Current(), func(p watermark.Pane[windowAcc]) error {
		return g.emitPane(p, emit)
	})
}

// Flush ends the input: in event-time mode every input's watermark is
// finalized (end-of-input) and every remaining pane fires; in global
// mode the remaining groups fire in first-seen key order.
func (g *GBKState) Flush(emit func([]byte) error) error {
	if g.windowed {
		g.gen.FinalizeAll()
		return g.state.FireAll(func(p watermark.Pane[windowAcc]) error {
			return g.emitPane(p, emit)
		})
	}
	for _, ks := range g.order {
		if grp := g.groups[ks]; len(grp.values) > 0 {
			if err := g.emitGlobal(grp, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *GBKState) emitGlobal(grp *globalGroup, emit func([]byte) error) error {
	wire, err := g.cfg.Output.Encode(beam.Grouped{Key: grp.key, Values: grp.values, Window: beam.GlobalWindow{}})
	if err != nil {
		return fmt.Errorf("graphx: GroupByKey encode: %w", err)
	}
	g.charge(g.cfg.Costs.CoderPerRecord)
	grp.values = nil
	return emit(wire)
}

func (g *GBKState) emitPane(p watermark.Pane[windowAcc], emit func([]byte) error) error {
	wire, err := g.cfg.Output.Encode(beam.Grouped{
		Key:    p.Acc.key,
		Values: p.Acc.values,
		Window: beam.IntervalWindow{Start: p.Start, End: p.End},
	})
	if err != nil {
		return fmt.Errorf("graphx: GroupByKey encode: %w", err)
	}
	g.charge(g.cfg.Costs.CoderPerRecord)
	return emit(wire)
}

// EncodedKVKey extracts the key bytes from a KV-coded record without a
// full decode: the KV coder writes "uvarint keyLen | key | ...". Engine
// runners hash it for keyed routing (Flink KeyBy, the Spark keyed
// shuffle, Apex keyed stream partitioning) so equal keys meet in one
// GBKState instance.
func EncodedKVKey(rec []byte) ([]byte, error) {
	klen, n := binary.Uvarint(rec)
	if n <= 0 || uint64(len(rec)-n) < klen {
		return nil, errors.New("graphx: malformed KV encoding")
	}
	return rec[n : n+int(klen)], nil
}
