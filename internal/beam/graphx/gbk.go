package graphx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"beambench/internal/beam"
	"beambench/internal/obs"
	"beambench/internal/simcost"
	"beambench/internal/watermark"
)

// ErrUnsupportedWindowing marks GroupByKey windowing shapes the shared
// executable cannot run: a non-global window fn outside the supported
// family (FixedWindows, SlidingWindows, Sessions), or non-global
// windowing without an element-derived event-time extractor
// (deterministic windowing is impossible once coder boundaries erased
// the flow timestamps). It wraps beam.ErrUnsupported so runner and
// harness callers can match it generically.
var ErrUnsupportedWindowing = fmt.Errorf("%w: GroupByKey windowing", beam.ErrUnsupported)

// GBKConfig parameterizes the shared GroupByKey executable.
type GBKConfig struct {
	// Windowing is the input collection's strategy: global windows (with
	// an optional count trigger) or event-time windowing (fixed, sliding
	// or session windows) with an EventTime extractor.
	Windowing beam.WindowingStrategy
	// Input is the KV boundary coder of the consumed collection.
	Input beam.KVCoder
	// Output encodes the emitted Grouped panes.
	Output beam.Coder
	// Costs is the runner's latency model; Charge receives the modeled
	// durations (nil disables charging).
	Costs  simcost.Costs
	Charge func(time.Duration)
	// Trace, when non-nil, records a watermark gauge for the grouping
	// state and an instant event per fired pane. Nil disables tracing.
	Trace *obs.Tracer
}

// GBKState is the stateful GroupByKey executable every engine runner
// deploys, sharing one pane-firing semantics across Flink, Spark and
// Apex (and matching the direct runner's reference output):
//
//   - Global windows: values group per key; an AfterCount trigger fires
//     a key's pane every N values, and Flush emits the remaining groups
//     in first-seen key order — the pre-existing bounded behaviour.
//   - Event-time windows: each element's windows are derived from the
//     element itself (Windowing.EventTime applied to the KV value) via
//     the strategy's window fn — one window under FixedWindows, several
//     overlapping ones under SlidingWindows, merging key-local sessions
//     under Sessions. The executable generates no watermark of its own:
//     pane firing is driven entirely by the watermark the engine
//     propagates through the dataflow as control events (stamped by the
//     upstream WindowInto assigner) and delivered via AdvanceWatermark.
//     Windows the watermark has passed fire ascending by (end, start)
//     with keys in first-seen order; Flush (the source met
//     broker.EndOfInput, so the end-of-stream watermark arrived) fires
//     the rest in the same order. The firing order depends only on the
//     record arrival order, which is what makes the engines
//     byte-identical on ordered inputs and multiset-identical always.
//
// A GBKState instance is owned by one engine subtask/partition; keyed
// routing (all records of a key reaching the same instance) is the
// engine's responsibility. Because the engine combines the watermark
// min-over-senders before delivery, a keyed merge of several racing
// upstream partitions needs no conservative fallback: no pane fires
// before every sender's watermark has passed its end.
type GBKState struct {
	cfg      GBKConfig
	windowed bool

	// Global-window mode.
	fireAfter int
	groups    map[string]*globalGroup
	order     []string

	// Event-time mode.
	state *watermark.WindowState[windowAcc]

	// Tracing handles, resolved once at construction (nil when disabled).
	wmGauge *obs.Gauge
}

// globalGroup is one key's pending values in global-window mode.
type globalGroup struct {
	key    any
	values []any
}

// windowAcc is one (window, key) pane accumulator in event-time mode.
type windowAcc struct {
	key    any
	values []any
}

// mergeAcc coalesces two session accumulators; sessions merge ascending
// by start, so values stay ordered by session start with later arrivals
// appended.
func mergeAcc(into *windowAcc, from windowAcc) {
	if into.key == nil {
		into.key = from.key
	}
	into.values = append(into.values, from.values...)
}

// assignerFor maps the SDK window fn onto the shared window-assignment
// family.
func assignerFor(fn beam.WindowFn) (watermark.Assigner, error) {
	switch f := fn.(type) {
	case beam.FixedWindows:
		a, err := watermark.NewTumblingAssigner(f.Size)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnsupportedWindowing, err)
		}
		return a, nil
	case beam.SlidingWindows:
		a, err := watermark.NewSlidingAssigner(f.Size, f.Slide)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnsupportedWindowing, err)
		}
		return a, nil
	case beam.Sessions:
		a, err := watermark.NewSessionAssigner(f.Gap)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUnsupportedWindowing, err)
		}
		return a, nil
	}
	return nil, fmt.Errorf("%w: window fn %s", ErrUnsupportedWindowing, fn.Name())
}

// NewGBKState validates the windowing shape and returns a fresh
// executable instance.
func NewGBKState(cfg GBKConfig) (*GBKState, error) {
	if cfg.Input.Key == nil || cfg.Input.Value == nil {
		return nil, errors.New("graphx: GroupByKey input is not KV-coded")
	}
	if cfg.Output == nil {
		return nil, errors.New("graphx: GroupByKey needs an output coder")
	}
	g := &GBKState{cfg: cfg, wmGauge: cfg.Trace.Gauge("watermark-lag/GroupByKey")}
	ws := cfg.Windowing
	if ws.IsGlobal() {
		if ws.Trigger != nil {
			g.fireAfter = ws.Trigger.FireAfter()
		}
		g.groups = make(map[string]*globalGroup)
		return g, nil
	}
	assigner, err := assignerFor(ws.Fn)
	if err != nil {
		return nil, err
	}
	if ws.EventTime == nil {
		return nil, fmt.Errorf("%w: non-global windowing without an event-time extractor", ErrUnsupportedWindowing)
	}
	state, err := watermark.NewWindowState[windowAcc](assigner, mergeAcc)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedWindowing, err)
	}
	g.windowed = true
	g.state = state
	return g, nil
}

// Windowed reports whether the instance runs in event-time mode.
func (g *GBKState) Windowed() bool { return g.windowed }

// Charge rebinds the cost sink. Engines whose task meters are scoped to
// a batch (Spark) rebind before each delivery; nil disables charging.
func (g *GBKState) Charge(fn func(time.Duration)) { g.cfg.Charge = fn }

func (g *GBKState) charge(d time.Duration) {
	if g.cfg.Charge != nil {
		g.cfg.Charge(d)
	}
}

// Process consumes one encoded KV record. In event-time mode it only
// accumulates — pane firing awaits the propagated watermark
// (AdvanceWatermark). In global mode a count trigger may fire the key's
// pane immediately.
func (g *GBKState) Process(rec []byte, emit func([]byte) error) error {
	elem, err := g.cfg.Input.Decode(rec)
	if err != nil {
		return fmt.Errorf("graphx: GroupByKey decode: %w", err)
	}
	g.charge(g.cfg.Costs.CoderPerRecord)
	g.charge(g.cfg.Costs.BeamDoFnPerRecord)
	kv, ok := elem.(beam.KV)
	if !ok {
		return fmt.Errorf("graphx: GroupByKey element %T is not a KV", elem)
	}
	ks, err := beam.KeyString(kv.Key)
	if err != nil {
		return err
	}

	if g.windowed {
		et, err := g.cfg.Windowing.EventTime(kv.Value)
		if err != nil {
			return fmt.Errorf("graphx: GroupByKey event time: %w", err)
		}
		// The per-record update closure is the price of the generic
		// timer-state API; combiner lifting (ROADMAP) folds the
		// accumulation into the state itself.
		//beamvet:allow hotalloc the grouped-state update closure is the generic timer-state API until combiner lifting lands
		g.state.Upsert(et, ks, func(acc *windowAcc) {
			acc.key = kv.Key
			acc.values = append(acc.values, kv.Value)
		})
		return nil
	}

	grp, ok := g.groups[ks]
	if !ok {
		grp = &globalGroup{key: kv.Key}
		g.groups[ks] = grp
		g.order = append(g.order, ks)
	}
	grp.values = append(grp.values, kv.Value)
	if g.fireAfter > 0 && len(grp.values) >= g.fireAfter {
		return g.emitGlobal(grp, emit)
	}
	return nil
}

// AdvanceWatermark delivers the propagated input watermark — a control
// event asserting no earlier event time will arrive on this instance's
// input — and emits every event-time pane the watermark released. It is
// a no-op in global-window mode, so engines can deliver watermarks
// unconditionally.
func (g *GBKState) AdvanceWatermark(w time.Time, emit func([]byte) error) error {
	if !g.windowed {
		return nil
	}
	g.wmGauge.SetTime(w)
	return g.state.FireReady(w, func(p watermark.Pane[windowAcc]) error {
		return g.emitPane(p, emit)
	})
}

// Flush ends the input: in event-time mode every remaining pane fires
// (the end-of-stream watermark); in global mode the remaining groups
// fire in first-seen key order.
func (g *GBKState) Flush(emit func([]byte) error) error {
	if g.windowed {
		// The end-of-stream watermark arrived: the gauge reads as
		// drained (zero lag) from here on.
		g.wmGauge.SetTime(watermark.EndOfTime)
		return g.state.FireAll(func(p watermark.Pane[windowAcc]) error {
			return g.emitPane(p, emit)
		})
	}
	for _, ks := range g.order {
		if grp := g.groups[ks]; len(grp.values) > 0 {
			if err := g.emitGlobal(grp, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *GBKState) emitGlobal(grp *globalGroup, emit func([]byte) error) error {
	wire, err := g.cfg.Output.Encode(beam.Grouped{Key: grp.key, Values: grp.values, Window: beam.GlobalWindow{}})
	if err != nil {
		return fmt.Errorf("graphx: GroupByKey encode: %w", err)
	}
	g.charge(g.cfg.Costs.CoderPerRecord)
	grp.values = nil
	return emit(wire)
}

func (g *GBKState) emitPane(p watermark.Pane[windowAcc], emit func([]byte) error) error {
	wire, err := g.cfg.Output.Encode(beam.Grouped{
		Key:    p.Acc.key,
		Values: p.Acc.values,
		Window: beam.IntervalWindow{Start: p.Start, End: p.End},
	})
	if err != nil {
		return fmt.Errorf("graphx: GroupByKey encode: %w", err)
	}
	g.charge(g.cfg.Costs.CoderPerRecord)
	g.cfg.Trace.Instant("panes/GroupByKey", "pane")
	return emit(wire)
}

// EncodedKVKey extracts the key bytes from a KV-coded record without a
// full decode: the KV coder writes "uvarint keyLen | key | ...". Engine
// runners hash it for keyed routing (Flink KeyBy, the Spark keyed
// shuffle, Apex keyed stream partitioning) so equal keys meet in one
// GBKState instance.
func EncodedKVKey(rec []byte) ([]byte, error) {
	klen, n := binary.Uvarint(rec)
	if n <= 0 || uint64(len(rec)-n) < klen {
		return nil, errors.New("graphx: malformed KV encoding")
	}
	return rec[n : n+int(klen)], nil
}
