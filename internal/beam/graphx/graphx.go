// Package graphx lowers a validated Beam pipeline into an execution
// plan of stages that every runner translates from. Its ParDo-fusion
// pass generalizes the linear-chain fusion of the Apex runner to
// arbitrary pipeline graphs: maximal chains of ParDos whose intermediate
// collections have exactly one consumer collapse into a single
// executable stage, so elements pass between the fused DoFns in memory
// without a coder round trip — the optimization Hesse et al. (ICDCS
// 2019) identify as the lever separating Beam-on-Apex (~1x on grep)
// from Beam-on-Flink (an operator and coder boundary per primitive).
//
// Fusion stops at every materialization boundary: sources, sinks,
// GroupByKey (a shuffle), Flatten (a merge of several inputs),
// WindowInto (a windowing change), and any collection consumed by more
// than one transform (each consumer needs its own copy of the stream).
package graphx

import (
	"errors"
	"fmt"
	"strings"

	"beambench/internal/beam"
	"beambench/internal/dag"
)

// Options controls the lowering.
type Options struct {
	// Fusion enables the ParDo-fusion pass; false lowers every
	// transform to its own stage (the per-primitive translation whose
	// cost the paper measures).
	Fusion bool
}

// Stage is one execution-plan node: a single transform, or a fused
// chain of ParDos that a runner deploys as one engine operator.
type Stage struct {
	// ID is the stage's index in plan order.
	ID int
	// Transforms holds the stage's transforms in flow order; more than
	// one only for a fused ParDo chain.
	Transforms []*beam.Transform
}

// Kind is the stage's primitive kind; a fused chain is a ParDo stage.
func (s *Stage) Kind() beam.TransformKind { return s.Transforms[0].Kind }

// Fused reports whether the stage is a fused ParDo chain.
func (s *Stage) Fused() bool { return len(s.Transforms) > 1 }

// Name joins the stage's transform names in flow order.
func (s *Stage) Name() string {
	if !s.Fused() {
		return s.Transforms[0].Name
	}
	names := make([]string, len(s.Transforms))
	for i, t := range s.Transforms {
		names[i] = t.Name
	}
	return strings.Join(names, "+")
}

// Inputs are the collections the stage consumes from other stages.
func (s *Stage) Inputs() []beam.PCollection { return s.Transforms[0].Inputs }

// Output is the collection the stage produces; for a fused chain that is
// the last transform's output, the only one visible outside the stage.
// Sinks return a zero PCollection.
func (s *Stage) Output() beam.PCollection {
	return s.Transforms[len(s.Transforms)-1].Output
}

// Fn returns the DoFn a runner executes for a ParDo stage: the single
// transform's fn, or the in-memory composition of the fused chain.
func (s *Stage) Fn() beam.DoFn {
	if s.Kind() != beam.KindParDo {
		return nil
	}
	if !s.Fused() {
		return s.Transforms[0].Fn
	}
	fns := make([]beam.DoFn, len(s.Transforms))
	names := make([]string, len(s.Transforms))
	for i, t := range s.Transforms {
		fns[i] = t.Fn
		names[i] = t.Name
	}
	return &FusedFn{fns: fns, names: names}
}

// Plan is the lowered pipeline: stages in topological (construction)
// order.
type Plan struct {
	Stages []*Stage
}

// OperatorCount is the number of plan stages — the operator count a
// runner's translation starts from before engine-specific expansions.
func (pl *Plan) OperatorCount() int { return len(pl.Stages) }

// StageOf returns the stage producing the given collection, if any.
func (pl *Plan) StageOf(col beam.PCollection) (*Stage, bool) {
	for _, s := range pl.Stages {
		if s.Output().Valid() && s.Output().ID() == col.ID() {
			return s, true
		}
	}
	return nil, false
}

// Lower validates the pipeline and lowers it into an execution plan,
// running the fusion pass when requested.
func Lower(p *beam.Pipeline, opts Options) (*Plan, error) {
	if p == nil {
		return nil, errors.New("graphx: nil pipeline")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	transforms := p.Transforms()

	// consumers counts how many transforms read each collection; an
	// intermediate with more than one consumer is a materialization
	// boundary and must not be fused away.
	consumers := make(map[int]int)
	for _, t := range transforms {
		for _, in := range t.Inputs {
			consumers[in.ID()]++
		}
	}

	pl := &Plan{}
	// stageByOutput tracks which stage produced each collection so a
	// ParDo can extend its producer's chain.
	stageByOutput := make(map[int]*Stage)
	for _, t := range transforms {
		if opts.Fusion && t.Kind == beam.KindParDo {
			in := t.Inputs[0]
			if prod, ok := stageByOutput[in.ID()]; ok &&
				prod.Kind() == beam.KindParDo &&
				consumers[in.ID()] == 1 {
				// Fuse: the producer chain's output becomes stage-
				// internal; only the new tail is visible downstream.
				delete(stageByOutput, in.ID())
				prod.Transforms = append(prod.Transforms, t)
				if t.Output.Valid() {
					stageByOutput[t.Output.ID()] = prod
				}
				continue
			}
		}
		s := &Stage{ID: len(pl.Stages), Transforms: []*beam.Transform{t}}
		pl.Stages = append(pl.Stages, s)
		if t.Output.Valid() {
			stageByOutput[t.Output.ID()] = s
		}
	}
	return pl, nil
}

// Graph renders the plan as a DAG for visualization (cmd/planviz); a
// fused stage appears as one node labelled with its chain.
func (pl *Plan) Graph() (*dag.Graph, error) {
	g := dag.New()
	for _, s := range pl.Stages {
		kind := dag.KindOperator
		if len(s.Inputs()) == 0 {
			kind = dag.KindSource
		}
		if !s.Output().Valid() {
			kind = dag.KindSink
		}
		name := s.Name()
		if name == "" {
			name = s.Kind().String()
		}
		if err := g.AddNode(dag.Node{
			ID:          fmt.Sprintf("s%d", s.ID),
			Name:        name,
			Kind:        kind,
			Parallelism: 1,
		}); err != nil {
			return nil, err
		}
	}
	for _, s := range pl.Stages {
		for _, in := range s.Inputs() {
			src, ok := pl.StageOf(in)
			if !ok {
				continue
			}
			if err := g.AddEdge(fmt.Sprintf("s%d", src.ID), fmt.Sprintf("s%d", s.ID)); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// FusedFn executes a fused ParDo chain as one DoFn: each element flows
// through the constituent fns via in-memory emitters, and the final
// fn's emissions surface as the stage's output.
type FusedFn struct {
	fns   []beam.DoFn
	names []string
}

// Len reports the number of fused DoFns.
func (f *FusedFn) Len() int { return len(f.fns) }

// ProcessElement implements beam.DoFn.
func (f *FusedFn) ProcessElement(ctx beam.Context, elem any, emit beam.Emitter) error {
	return f.process(0, ctx, elem, emit)
}

func (f *FusedFn) process(i int, ctx beam.Context, elem any, emit beam.Emitter) error {
	if i == len(f.fns) {
		return emit(elem)
	}
	// The per-stage emitter closure IS the fusion mechanism — the
	// abstraction cost this benchmark exists to measure. Removing it
	// would remove the thing under test.
	//beamvet:allow hotalloc the chained emitter closure is the fused-stage hand-off under measurement
	return f.fns[i].ProcessElement(ctx, elem, func(out any) error {
		return f.process(i+1, ctx, out, emit)
	})
}

// Setup implements beam.Setupper: every fused fn's hook runs in chain
// order, and a failure names the DoFn it came from. DoFns already set
// up when a later one fails are torn down (best effort) so the failed
// stage does not leak their resources.
func (f *FusedFn) Setup() error {
	for i, fn := range f.fns {
		s, ok := fn.(beam.Setupper)
		if !ok {
			continue
		}
		if err := s.Setup(); err != nil {
			f.teardownRange(i - 1)
			return fmt.Errorf("fused DoFn %q: %w", f.names[i], err)
		}
	}
	return nil
}

// Teardown implements beam.Teardowner, unwinding in reverse chain order
// (downstream fns first, mirroring setup). Every hook runs even when an
// earlier one fails — a failed teardown must not leak the other fns'
// resources — and the first error is reported.
func (f *FusedFn) Teardown() error {
	var firstErr error
	for i := len(f.fns) - 1; i >= 0; i-- {
		if td, ok := f.fns[i].(beam.Teardowner); ok {
			if err := td.Teardown(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("fused DoFn %q: %w", f.names[i], err)
			}
		}
	}
	return firstErr
}

// teardownRange tears down fns[0..last] in reverse order, ignoring
// errors (it runs on the failure path, where the Setup error wins).
func (f *FusedFn) teardownRange(last int) {
	for i := last; i >= 0; i-- {
		if td, ok := f.fns[i].(beam.Teardowner); ok {
			_ = td.Teardown()
		}
	}
}
