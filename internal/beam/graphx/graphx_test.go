package graphx_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"beambench/internal/beam"
	"beambench/internal/beam/graphx"
)

func ident(name string) beam.DoFn {
	return beam.DoFnFunc(func(ctx beam.Context, elem any, emit beam.Emitter) error {
		return emit(elem)
	})
}

// chainPipeline builds Create -> ParDo a -> ParDo b -> ParDo c.
func chainPipeline(t *testing.T) (*beam.Pipeline, beam.PCollection) {
	t.Helper()
	p := beam.NewPipeline()
	col := beam.Create(p, []any{"x", "y"})
	for _, name := range []string{"a", "b", "c"} {
		col = beam.ParDo(p, name, ident(name), col)
	}
	return p, col
}

func stageNames(pl *graphx.Plan) []string {
	out := make([]string, len(pl.Stages))
	for i, s := range pl.Stages {
		out[i] = s.Name()
	}
	return out
}

func TestUnfusedLoweringIsOneStagePerTransform(t *testing.T) {
	p, _ := chainPipeline(t)
	pl, err := graphx.Lower(p, graphx.Options{Fusion: false})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pl.OperatorCount(), 4; got != want {
		t.Fatalf("OperatorCount = %d, want %d (stages: %v)", got, want, stageNames(pl))
	}
	for _, s := range pl.Stages {
		if s.Fused() {
			t.Errorf("stage %q fused in unfused lowering", s.Name())
		}
	}
}

func TestFusionCollapsesParDoChain(t *testing.T) {
	p, _ := chainPipeline(t)
	pl, err := graphx.Lower(p, graphx.Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pl.OperatorCount(), 2; got != want {
		t.Fatalf("OperatorCount = %d, want %d (stages: %v)", got, want, stageNames(pl))
	}
	fused := pl.Stages[1]
	if !fused.Fused() || fused.Name() != "a+b+c" {
		t.Fatalf("fused stage = %q (fused=%v), want a+b+c", fused.Name(), fused.Fused())
	}
	if fused.Kind() != beam.KindParDo {
		t.Errorf("fused stage kind = %v, want ParDo", fused.Kind())
	}
}

func TestFusionStopsAtGroupByKey(t *testing.T) {
	p := beam.NewPipeline()
	col := beam.Create(p, []any{"x"})
	keyed := beam.WithKeys(p, "key", func(v any) (any, error) { return "k", nil }, col)
	grouped := beam.GroupByKey(p, keyed)
	after := beam.ParDo(p, "after", ident("after"), grouped)
	_ = after
	pl, err := graphx.Lower(p, graphx.Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	// Create | key | GBK | after: the GBK is a shuffle boundary, so the
	// ParDos on either side must not fuse across it.
	if got, want := pl.OperatorCount(), 4; got != want {
		t.Fatalf("OperatorCount = %d, want %d (stages: %v)", got, want, stageNames(pl))
	}
	for _, s := range pl.Stages {
		if s.Kind() == beam.KindGroupByKey && s.Fused() {
			t.Error("GroupByKey stage was fused")
		}
	}
}

func TestFusionStopsAtFlatten(t *testing.T) {
	p := beam.NewPipeline()
	left := beam.ParDo(p, "left", ident("left"), beam.Create(p, []any{"a"}))
	right := beam.ParDo(p, "right", ident("right"), beam.Create(p, []any{"b"}))
	merged := beam.Flatten(p, left, right)
	_ = beam.ParDo(p, "after", ident("after"), merged)
	pl, err := graphx.Lower(p, graphx.Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	// Two creates, two side ParDos, the Flatten, and the downstream
	// ParDo: nothing fuses through the merge.
	if got, want := pl.OperatorCount(), 6; got != want {
		t.Fatalf("OperatorCount = %d, want %d (stages: %v)", got, want, stageNames(pl))
	}
	for _, s := range pl.Stages {
		if s.Fused() {
			t.Errorf("stage %q fused across a Flatten boundary", s.Name())
		}
	}
}

func TestFusionStopsAtWindowInto(t *testing.T) {
	p := beam.NewPipeline()
	col := beam.ParDo(p, "pre", ident("pre"), beam.Create(p, []any{"a"}))
	windowed := beam.WindowInto(p, beam.WindowingStrategy{Fn: beam.FixedWindows{Size: time.Second}}, col)
	_ = beam.ParDo(p, "post", ident("post"), windowed)
	pl, err := graphx.Lower(p, graphx.Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pl.OperatorCount(), 4; got != want {
		t.Fatalf("OperatorCount = %d, want %d (stages: %v)", got, want, stageNames(pl))
	}
}

func TestFusionStopsAtMultiConsumerCollection(t *testing.T) {
	p := beam.NewPipeline()
	shared := beam.ParDo(p, "shared", ident("shared"), beam.Create(p, []any{"a"}))
	// Two consumers read `shared`; fusing it into either branch would
	// starve the other.
	b1 := beam.ParDo(p, "branch1", ident("branch1"), shared)
	b2 := beam.ParDo(p, "branch2", ident("branch2"), shared)
	_ = beam.Flatten(p, b1, b2)
	pl, err := graphx.Lower(p, graphx.Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pl.Stages {
		if s.Fused() {
			t.Fatalf("stage %q fused despite multi-consumer input (stages: %v)", s.Name(), stageNames(pl))
		}
	}
	if got, want := pl.OperatorCount(), 5; got != want {
		t.Fatalf("OperatorCount = %d, want %d (stages: %v)", got, want, stageNames(pl))
	}
}

func TestFusedFnRunsChainInMemory(t *testing.T) {
	p := beam.NewPipeline()
	col := beam.Create(p, []any{1, 2, 3})
	doubled := beam.MapElements(p, "double", func(v any) (any, error) { return v.(int) * 2, nil }, col)
	_ = beam.Filter(p, "keepBig", func(v any) (bool, error) { return v.(int) > 2, nil }, doubled)
	pl, err := graphx.Lower(p, graphx.Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if pl.OperatorCount() != 2 {
		t.Fatalf("OperatorCount = %d, want 2 (stages: %v)", pl.OperatorCount(), stageNames(pl))
	}
	fn := pl.Stages[1].Fn()
	var got []int
	for _, v := range []int{1, 2, 3} {
		err := fn.ProcessElement(beam.Context{}, v, func(out any) error {
			got = append(got, out.(int))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 2 || got[0] != 4 || got[1] != 6 {
		t.Fatalf("fused chain emitted %v, want [4 6]", got)
	}
}

// hookFn records its lifecycle events into a shared log.
type hookFn struct {
	name     string
	log      *[]string
	setupErr error
}

func (h *hookFn) ProcessElement(ctx beam.Context, elem any, emit beam.Emitter) error {
	return emit(elem)
}
func (h *hookFn) Setup() error {
	*h.log = append(*h.log, "setup:"+h.name)
	return h.setupErr
}
func (h *hookFn) Teardown() error {
	*h.log = append(*h.log, "teardown:"+h.name)
	return nil
}

// fusedLifecycle builds a fused a+b chain from hook fns and returns its
// composed DoFn.
func fusedLifecycle(t *testing.T, a, b beam.DoFn) beam.DoFn {
	t.Helper()
	p := beam.NewPipeline()
	col := beam.Create(p, []any{"x"})
	col = beam.ParDo(p, "a", a, col)
	_ = beam.ParDo(p, "b", b, col)
	pl, err := graphx.Lower(p, graphx.Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if pl.OperatorCount() != 2 || !pl.Stages[1].Fused() {
		t.Fatalf("expected fused a+b stage, got %v", stageNames(pl))
	}
	return pl.Stages[1].Fn()
}

func TestFusedFnTeardownReversesSetupOrder(t *testing.T) {
	var log []string
	fn := fusedLifecycle(t, &hookFn{name: "a", log: &log}, &hookFn{name: "b", log: &log})
	setup := fn.(beam.Setupper)
	if err := setup.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := fn.(beam.Teardowner).Teardown(); err != nil {
		t.Fatal(err)
	}
	want := []string{"setup:a", "setup:b", "teardown:b", "teardown:a"}
	if len(log) != len(want) {
		t.Fatalf("lifecycle log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("lifecycle log = %v, want %v", log, want)
		}
	}
}

func TestFusedFnSetupFailureUnwindsEarlierFns(t *testing.T) {
	var log []string
	boom := errors.New("boom")
	fn := fusedLifecycle(t,
		&hookFn{name: "a", log: &log},
		&hookFn{name: "b", log: &log, setupErr: boom})
	err := fn.(beam.Setupper).Setup()
	if !errors.Is(err, boom) {
		t.Fatalf("Setup error = %v, want %v", err, boom)
	}
	if !strings.Contains(err.Error(), `"b"`) {
		t.Errorf("Setup error %q does not name the failing DoFn", err)
	}
	// a was set up before b failed, so a must have been torn down.
	want := []string{"setup:a", "setup:b", "teardown:a"}
	if len(log) != len(want) {
		t.Fatalf("lifecycle log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("lifecycle log = %v, want %v", log, want)
		}
	}
}

func TestPlanGraphRendersFusedStage(t *testing.T) {
	p, _ := chainPipeline(t)
	pl, err := graphx.Lower(p, graphx.Options{Fusion: true})
	if err != nil {
		t.Fatal(err)
	}
	g, err := pl.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 {
		t.Fatalf("graph has %d nodes, want 2", g.Len())
	}
	var sb strings.Builder
	if err := g.RenderText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "a+b+c") {
		t.Errorf("rendered plan lacks fused stage label:\n%s", sb.String())
	}
}
