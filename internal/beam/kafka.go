package beam

import (
	"errors"
	"fmt"
	"time"

	"beambench/internal/broker"
)

// KafkaRecord is the raw element produced by KafkaRead: the consumed
// payload together with its broker metadata. WithoutMetadata strips the
// metadata, which is the first RawParDo the paper identifies in the Beam
// execution plan (Figure 13).
type KafkaRecord struct {
	Topic     string
	Partition int
	Offset    int64
	Timestamp time.Time
	Key       []byte
	Value     []byte
}

// KafkaReadConfig is the connector configuration runners translate.
type KafkaReadConfig struct {
	Broker *broker.Broker
	Topic  string
}

// KafkaWriteConfig is the sink configuration runners translate.
type KafkaWriteConfig struct {
	Broker   *broker.Broker
	Topic    string
	Producer broker.ProducerConfig
}

// KafkaRead reads a topic and returns an unbounded collection of
// KafkaRecord elements, the analogue of KafkaIO.read().
func KafkaRead(p *Pipeline, b *broker.Broker, topic string) PCollection {
	if b == nil {
		p.fail(errors.New("beam: KafkaRead: nil broker"))
	}
	if topic == "" {
		p.fail(errors.New("beam: KafkaRead: empty topic"))
	}
	t := p.addTransform(&Transform{
		Name:   "KafkaIO.Read " + topic,
		Kind:   KindKafkaRead,
		Config: KafkaReadConfig{Broker: b, Topic: topic},
	})
	out := p.newPCollection(KafkaRecordCoder{}, false /* unbounded */, DefaultWindowing(), t)
	t.Output = out
	return out
}

// WithoutMetadata drops the broker metadata from a KafkaRecord
// collection, yielding KV pairs — the withoutMetadata() call of KafkaIO.
func WithoutMetadata(p *Pipeline, in PCollection) PCollection {
	return ParDo(p, "WithoutMetadata", DoFnFunc(func(ctx Context, elem any, emit Emitter) error {
		r, ok := elem.(KafkaRecord)
		if !ok {
			return fmt.Errorf("beam: WithoutMetadata: element %T is not a KafkaRecord", elem)
		}
		return emit(KV{Key: r.Key, Value: r.Value})
	}), in, WithCoder(KVCoder{Key: BytesCoder{}, Value: BytesCoder{}}))
}

// KafkaWrite writes a collection's elements to a topic, the analogue of
// KafkaIO.write(). Elements must be []byte (use a serializing ParDo
// upstream otherwise); runners expand the transform into a value
// serializer plus the sink itself, which is why Beam plans show one more
// operator than the native job (Figure 13).
func KafkaWrite(p *Pipeline, b *broker.Broker, topic string, in PCollection, producerCfg broker.ProducerConfig) {
	if b == nil {
		p.fail(errors.New("beam: KafkaWrite: nil broker"))
	}
	if topic == "" {
		p.fail(errors.New("beam: KafkaWrite: empty topic"))
	}
	if !in.Valid() {
		p.fail(errors.New("beam: KafkaWrite: invalid input"))
		return
	}
	p.addTransform(&Transform{
		Name:   "KafkaIO.Write " + topic,
		Kind:   KindKafkaWrite,
		Inputs: []PCollection{in},
		Config: KafkaWriteConfig{Broker: b, Topic: topic, Producer: producerCfg},
	})
}
