package runners_test

import (
	"testing"

	"beambench/internal/goleak"
)

// TestMain gates the package on goroutine hygiene: a runner matrix run
// spins up engine clusters, brokers, and monitors per cell, and a cell
// that leaks a goroutine would skew every cell measured after it.
func TestMain(m *testing.M) {
	goleak.VerifyTestMain(m)
}
