// Package runners registers every bundled runner with the beam runner
// registry. Import it (blank) and select engines by name:
//
//	import _ "beambench/internal/beam/runners"
//
//	r, err := beam.GetRunner("flink") // direct | flink | spark | apex
//	res, err := r.Run(ctx, p, beam.Options{Parallelism: 2})
//
// Each runner package also registers itself when imported directly;
// this package just bundles the four of them.
package runners

import (
	// Registered runner implementations.
	_ "beambench/internal/beam/runner/apexrunner"
	_ "beambench/internal/beam/runner/direct"
	_ "beambench/internal/beam/runner/flinkrunner"
	_ "beambench/internal/beam/runner/sparkrunner"
)
