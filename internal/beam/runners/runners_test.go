package runners_test

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"beambench/internal/aol"
	"beambench/internal/beam"
	_ "beambench/internal/beam/runners"
	"beambench/internal/broker"
	"beambench/internal/metrics"
	"beambench/internal/queries"
)

const testRecords = 400

// freshWorkload builds a broker preloaded with a deterministic
// synthetic search log.
func freshWorkload(t testing.TB, seed uint64) queries.Workload {
	t.Helper()
	b := broker.New()
	for _, topic := range []string{"input", "output"} {
		if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			t.Fatal(err)
		}
	}
	gen, err := aol.NewGenerator(aol.Config{Records: testRecords, Seed: seed, GrepHits: -1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if err := p.Send("input", nil, rec.AppendTSV(nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return queries.Workload{Broker: b, InputTopic: "input", OutputTopic: "output", Seed: 7}
}

func outputStrings(t testing.TB, w queries.Workload) []string {
	t.Helper()
	c, err := w.Broker.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignAll(w.OutputTopic); err != nil {
		t.Fatal(err)
	}
	var out []string
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		for _, r := range recs {
			out = append(out, string(r.Value))
		}
	}
}

// runQuery executes one query through the named registered runner on a
// fresh workload and returns the output topic contents and the result.
func runQuery(t testing.TB, runnerName string, q queries.Query, fusion beam.FusionMode, seed uint64) ([]string, beam.Result) {
	t.Helper()
	w := freshWorkload(t, seed)
	p, err := queries.BeamPipeline(w, q)
	if err != nil {
		t.Fatal(err)
	}
	r, err := beam.GetRunner(runnerName)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(context.Background(), p, beam.Options{Fusion: fusion})
	if err != nil {
		t.Fatalf("runner %s, query %s, fusion %s: %v", runnerName, q, fusion, err)
	}
	return outputStrings(t, w), res
}

func TestRegistryListsAllBundledRunners(t *testing.T) {
	want := []string{"apex", "direct", "flink", "spark"}
	if got := beam.RunnerNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("RunnerNames() = %v, want %v", got, want)
	}
	if _, err := beam.GetRunner("nope"); err == nil {
		t.Error("GetRunner(nope) succeeded, want error")
	}
}

// TestFusedMatchesUnfusedOutputs is the acceptance property of the
// fusion pass: for every runner and every query, forcing fusion on and
// off produces byte-identical output topics, while the fused translation
// uses strictly fewer engine operators.
func TestFusedMatchesUnfusedOutputs(t *testing.T) {
	for _, runnerName := range beam.RunnerNames() {
		for _, q := range queries.All() {
			t.Run(fmt.Sprintf("%s/%s", runnerName, q), func(t *testing.T) {
				fusedOut, fusedRes := runQuery(t, runnerName, q, beam.FusionOn, 42)
				unfusedOut, unfusedRes := runQuery(t, runnerName, q, beam.FusionOff, 42)
				if !reflect.DeepEqual(fusedOut, unfusedOut) {
					t.Fatalf("fused output (%d records) differs from unfused (%d records)",
						len(fusedOut), len(unfusedOut))
				}
				if len(fusedOut) == 0 {
					t.Fatal("query produced no output; workload too small")
				}
				if f, u := fusedRes.OperatorCount(), unfusedRes.OperatorCount(); f >= u {
					t.Errorf("fused OperatorCount = %d, want strictly fewer than unfused %d", f, u)
				}
			})
		}
	}
}

// TestFusionModeDefaultsArePaperFaithful pins the default translation
// mode per runner: Apex fuses (Figure 11's ~1x grep), the others do not
// (Figure 13's per-primitive expansion).
func TestFusionModeDefaultsArePaperFaithful(t *testing.T) {
	for _, tc := range []struct {
		runner    string
		wantFused bool
	}{
		{"apex", true},
		{"direct", false},
		{"flink", false},
		{"spark", false},
	} {
		defaultOut, defaultRes := runQuery(t, tc.runner, queries.Grep, beam.FusionDefault, 7)
		mode := beam.FusionOff
		if tc.wantFused {
			mode = beam.FusionOn
		}
		forcedOut, forcedRes := runQuery(t, tc.runner, queries.Grep, mode, 7)
		if !reflect.DeepEqual(defaultOut, forcedOut) {
			t.Errorf("%s: default-mode output differs from fusion=%v output", tc.runner, tc.wantFused)
		}
		if defaultRes.OperatorCount() != forcedRes.OperatorCount() {
			t.Errorf("%s: default OperatorCount = %d, fusion=%v gives %d — default is not paper-faithful",
				tc.runner, defaultRes.OperatorCount(), tc.wantFused, forcedRes.OperatorCount())
		}
	}
}

// TestDirectRunnerFusionPropertyAcrossSeeds drives the reference runner
// over several generated workloads per query, asserting fused and
// unfused execution agree element-for-element.
func TestDirectRunnerFusionPropertyAcrossSeeds(t *testing.T) {
	for _, seed := range []uint64{1, 9, 1234} {
		for _, q := range queries.All() {
			fusedOut, _ := runQuery(t, "direct", q, beam.FusionOn, seed)
			unfusedOut, _ := runQuery(t, "direct", q, beam.FusionOff, seed)
			if !reflect.DeepEqual(fusedOut, unfusedOut) {
				t.Errorf("seed %d, query %s: fused and unfused outputs differ", seed, q)
			}
		}
	}
}

// TestEngineRunnersMatchDirectReference cross-checks every engine
// runner's fused and unfused outputs against the direct runner.
func TestEngineRunnersMatchDirectReference(t *testing.T) {
	for _, q := range queries.All() {
		reference, _ := runQuery(t, "direct", q, beam.FusionOff, 42)
		for _, runnerName := range []string{"flink", "spark", "apex"} {
			for _, mode := range []beam.FusionMode{beam.FusionOn, beam.FusionOff} {
				got, _ := runQuery(t, runnerName, q, mode, 42)
				if !reflect.DeepEqual(got, reference) {
					t.Errorf("%s (fusion %s), query %s: output differs from direct reference (%d vs %d records)",
						runnerName, mode, q, len(got), len(reference))
				}
			}
		}
	}
}

// multiRecordWindowWorkload preloads a broker with records whose
// 1-second event-time windows each hold several records of few users,
// so WindowedCount panes carry counts above one — the case where a
// watermark firing early (before a lagging upstream partition delivered
// its share) would split panes.
func multiRecordWindowWorkload(t testing.TB) queries.Workload {
	t.Helper()
	b := broker.New()
	for _, topic := range []string{"input", "output"} {
		if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			t.Fatal(err)
		}
	}
	gen, err := aol.NewGenerator(aol.Config{Records: 600, Seed: 11, GrepHits: -1, QueryTimeStep: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		rec.UserID = fmt.Sprintf("user%d", i%3) // few users -> multi-record panes
		if err := p.Send("input", nil, rec.AppendTSV(nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	return queries.Workload{Broker: b, InputTopic: "input", OutputTopic: "output", Seed: 7}
}

// TestWindowedCountParallelMultiRecordPanes drives the stateful query
// with multi-record panes at parallelism 2 on every engine runner and
// compares sorted outputs against the direct reference. This is the
// scenario where the keyed stateful instance receives interleaved
// streams from racing upstream partitions: per-input watermark tracking
// (minimum-across-inputs propagation) must keep every pane whole. Three
// repetitions guard against scheduling-dependent interleavings.
func TestWindowedCountParallelMultiRecordPanes(t *testing.T) {
	ref := multiRecordWindowWorkload(t)
	p, err := queries.BeamPipeline(ref, queries.WindowedCount)
	if err != nil {
		t.Fatal(err)
	}
	r, err := beam.GetRunner("direct")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), p, beam.Options{}); err != nil {
		t.Fatal(err)
	}
	want := outputStrings(t, ref)
	sort.Strings(want)
	multi := 0
	for _, pane := range want {
		if !strings.HasSuffix(pane, "\t1") {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("reference has no multi-record panes; workload does not exercise the hazard")
	}

	for _, runnerName := range []string{"flink", "spark", "apex"} {
		for round := range 3 {
			t.Run(fmt.Sprintf("%s/round%d", runnerName, round), func(t *testing.T) {
				w := multiRecordWindowWorkload(t)
				p, err := queries.BeamPipeline(w, queries.WindowedCount)
				if err != nil {
					t.Fatal(err)
				}
				r, err := beam.GetRunner(runnerName)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := r.Run(context.Background(), p, beam.Options{Parallelism: 2}); err != nil {
					t.Fatal(err)
				}
				got := outputStrings(t, w)
				sort.Strings(got)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("sorted output (%d panes) differs from direct reference (%d panes)", len(got), len(want))
				}
			})
		}
	}
}

// TestWindowedCountMultiPartitionTopic drives the stateful query from a
// two-partition input topic at parallelism 2: two source subtasks are
// genuinely concurrently active, so the keyed stateful instances merge
// racing ordered streams. The propagated watermark (each source chain
// stamps its own, combined min-over-senders at the keyed merge) must
// keep every pane whole; the sorted output must equal the
// dataset-derived reference on every engine runner.
func TestWindowedCountMultiPartitionTopic(t *testing.T) {
	records := make([][]byte, 0, 400)
	gen, err := aol.NewGenerator(aol.Config{Records: 400, Seed: 21, GrepHits: -1, QueryTimeStep: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		rec.UserID = fmt.Sprintf("user%d", i%3)
		records = append(records, rec.AppendTSV(nil))
	}
	wantPayloads, err := queries.ExpectedWindowedCounts(records)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(wantPayloads))
	for i, p := range wantPayloads {
		want[i] = string(p)
	}
	sort.Strings(want)

	load := func() queries.Workload {
		b := broker.New()
		if err := b.CreateTopic("input", broker.TopicConfig{Partitions: 2}); err != nil {
			t.Fatal(err)
		}
		if err := b.CreateTopic("output", broker.TopicConfig{Partitions: 1}); err != nil {
			t.Fatal(err)
		}
		p, err := b.NewProducer(broker.ProducerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		for i, rec := range records {
			// Alternate partitions: each partition's stream stays
			// event-time ordered, their merge does not.
			if err := p.Send("input", []byte(fmt.Sprintf("p%d", i%2)), rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		return queries.Workload{Broker: b, InputTopic: "input", OutputTopic: "output", Seed: 7}
	}

	for _, runnerName := range []string{"flink", "spark", "apex"} {
		t.Run(runnerName, func(t *testing.T) {
			w := load()
			p, err := queries.BeamPipeline(w, queries.WindowedCount)
			if err != nil {
				t.Fatal(err)
			}
			r, err := beam.GetRunner(runnerName)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := r.Run(context.Background(), p, beam.Options{Parallelism: 2}); err != nil {
				t.Fatal(err)
			}
			got := outputStrings(t, w)
			sort.Strings(got)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("sorted output (%d panes) differs from dataset reference (%d panes)", len(got), len(want))
			}
		})
	}
}

// TestMetricsAndElements sanity-checks the beam.Result surface.
func TestMetricsAndElements(t *testing.T) {
	_, res := runQuery(t, "flink", queries.Grep, beam.FusionDefault, 42)
	metrics := res.Metrics()
	if len(metrics) == 0 {
		t.Error("flink result has no operator metrics")
	}
	if res.Elements(beam.PCollection{}) != nil {
		t.Error("engine runner materialized elements")
	}

	w := freshWorkload(t, 42)
	p, err := queries.BeamPipeline(w, queries.Grep)
	if err != nil {
		t.Fatal(err)
	}
	r, err := beam.GetRunner("direct")
	if err != nil {
		t.Fatal(err)
	}
	res, err = r.Run(context.Background(), p, beam.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics()) == 0 {
		t.Error("direct result has no stage counts")
	}
}

// TestAllRunnersReportStageThroughput: with a collector in
// beam.Options.Metrics, every registered runner — direct included —
// must report per-stage throughput, and some stage must carry exactly
// the query's output record count.
func TestAllRunnersReportStageThroughput(t *testing.T) {
	for _, runnerName := range []string{"direct", "apex", "flink", "spark"} {
		t.Run(runnerName, func(t *testing.T) {
			w := freshWorkload(t, 42)
			p, err := queries.BeamPipeline(w, queries.Grep)
			if err != nil {
				t.Fatal(err)
			}
			r, err := beam.GetRunner(runnerName)
			if err != nil {
				t.Fatal(err)
			}
			col := metrics.NewCollector()
			if _, err := r.Run(context.Background(), p, beam.Options{Metrics: col}); err != nil {
				t.Fatal(err)
			}
			outputs := int64(len(outputStrings(t, w)))
			if outputs == 0 {
				t.Fatal("grep produced no output; workload too small")
			}
			sums := col.StageSummaries()
			if len(sums) == 0 {
				t.Fatal("no stage throughput collected")
			}
			var sawInput, sawOutput bool
			for _, s := range sums {
				if s.Records == testRecords {
					sawInput = true
				}
				if s.Records == outputs {
					sawOutput = true
				}
				if s.Records > 0 && s.PeakRate <= 0 {
					t.Errorf("stage %q has %d records but zero peak rate", s.Name, s.Records)
				}
			}
			if !sawInput || !sawOutput {
				t.Errorf("stage counts miss input (%d) or output (%d): %+v", testRecords, outputs, sums)
			}
		})
	}
}
