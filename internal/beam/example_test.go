package beam_test

import (
	"fmt"
	"strings"

	"beambench/internal/beam"
	"beambench/internal/beam/runner/direct"
)

// ExamplePipeline builds and runs a small pipeline on the direct runner.
func Example() {
	p := beam.NewPipeline()
	words := beam.Create(p, []any{"stream", "processing", "systems"})
	upper := beam.MapElements(p, "upper", func(v any) (any, error) {
		return strings.ToUpper(v.(string)), nil
	}, words)
	short := beam.Filter(p, "short", func(v any) (bool, error) {
		return len(v.(string)) <= 7, nil
	}, upper)

	res, err := direct.Run(p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, v := range res.Elements(short) {
		fmt.Println(v)
	}
	// Output:
	// STREAM
	// SYSTEMS
}

// ExampleGroupByKey demonstrates keyed grouping on a bounded collection.
func ExampleGroupByKey() {
	p := beam.NewPipeline()
	kvs := beam.Create(p, []any{
		beam.KV{Key: "fruit", Value: "apple"},
		beam.KV{Key: "fruit", Value: "pear"},
		beam.KV{Key: "root", Value: "carrot"},
	})
	grouped := beam.GroupByKey(p, kvs)

	res, err := direct.Run(p)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, v := range res.Elements(grouped) {
		g := v.(beam.Grouped)
		fmt.Printf("%v: %d\n", g.Key, len(g.Values))
	}
	// Output:
	// fruit: 2
	// root: 1
}
