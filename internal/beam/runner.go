package beam

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/simcost"
)

// ErrUnsupported is the shared sentinel for transforms (or transform
// shapes) a runner cannot translate. Every bundled runner wraps it in
// its own package-level ErrUnsupported, so callers can match a
// capability gap generically — errors.Is(err, beam.ErrUnsupported) —
// without knowing which runner rejected the pipeline. The harness uses
// exactly that to record an unsupported matrix cell as skipped instead
// of aborting the run.
var ErrUnsupported = errors.New("beam: unsupported transform")

// FusionMode selects how a runner translates ParDo chains: as separate
// engine operators with coder boundaries between them (the abstraction
// cost the paper measures), or fused into executable stages by the
// shared optimizer (internal/beam/graphx).
type FusionMode int

const (
	// FusionDefault keeps each runner's paper-faithful translation: the
	// Apex runner fuses the ParDo chain into one executable stage
	// (Hesse et al., Figure 11: Beam-on-Apex grep on par with native),
	// while the Flink and Spark runners emit one engine operator per
	// Beam primitive (Figure 13).
	FusionDefault FusionMode = iota
	// FusionOn forces the shared ParDo-fusion pass on every runner, so
	// the fused translation mode is measurable on engines whose Beam
	// runner does not fuse.
	FusionOn
	// FusionOff forces per-primitive translation on every runner,
	// including Apex, exposing the unfused abstraction cost everywhere.
	FusionOff
)

// String names the mode for flags and labels.
func (m FusionMode) String() string {
	switch m {
	case FusionDefault:
		return "default"
	case FusionOn:
		return "on"
	case FusionOff:
		return "off"
	default:
		return fmt.Sprintf("FusionMode(%d)", int(m))
	}
}

// Enabled resolves the mode against a runner's default translation
// behaviour.
func (m FusionMode) Enabled(runnerDefault bool) bool {
	switch m {
	case FusionOn:
		return true
	case FusionOff:
		return false
	default:
		return runnerDefault
	}
}

// ParseFusionMode parses a -fusion flag value.
func ParseFusionMode(s string) (FusionMode, error) {
	switch s {
	case "", "default":
		return FusionDefault, nil
	case "on", "true", "fused":
		return FusionOn, nil
	case "off", "false", "unfused":
		return FusionOff, nil
	default:
		return 0, fmt.Errorf("beam: unknown fusion mode %q (want default, on or off)", s)
	}
}

// Options is the runner-independent execution configuration. The Kafka
// cluster handles ride on the pipeline itself (KafkaRead/KafkaWrite
// carry their broker); Options carries everything else a runner needs to
// build and drive a fresh engine cluster for the run.
type Options struct {
	// Parallelism is the engine parallelism knob (Flink job parallelism,
	// spark.default.parallelism, Apex operator partitions). Zero means 1.
	Parallelism int
	// Fusion selects the translation mode; see FusionMode.
	Fusion FusionMode
	// Costs calibrates the engine latency model; nil selects
	// simcost.DefaultCosts.
	Costs *simcost.Costs
	// Sim scales modeled latencies into wall-clock waits; nil charges
	// nothing (fast, for tests).
	Sim *simcost.Simulator
	// MaxRatePerPartition caps Spark Streaming micro-batch sizes; other
	// runners ignore it. Zero keeps the engine default.
	MaxRatePerPartition int
	// TargetRecords is the end-of-input contract for KafkaRead sources:
	// the total number of records the input topic will eventually hold.
	// Runners keep consuming — blocking on the broker — until that many
	// records have been appended and drained, which lets a data sender
	// stream into the topic while the pipeline runs. Zero degrades every
	// KafkaRead to a bounded snapshot of the topic's contents at source
	// start (the right default when the topic is fully preloaded before
	// Run is called outside the harness).
	TargetRecords int64
	// Metrics, when non-nil, receives per-stage throughput from the
	// translated engine operators while the pipeline runs (every runner
	// threads it into its engine's runtime). Nil disables collection at
	// no hot-path cost.
	Metrics *metrics.Collector
	// Trace, when non-nil, receives lifecycle spans and watermark
	// gauges from the translated pipeline (runners thread it into their
	// engine's runtime alongside Metrics). Nil disables tracing at no
	// hot-path cost.
	Trace *obs.Tracer
}

// EffectiveCosts resolves the cost model, defaulting when unset.
func (o Options) EffectiveCosts() simcost.Costs {
	if o.Costs != nil {
		return *o.Costs
	}
	return simcost.DefaultCosts()
}

// EffectiveParallelism resolves the parallelism, defaulting to 1.
func (o Options) EffectiveParallelism() int {
	if o.Parallelism <= 0 {
		return 1
	}
	return o.Parallelism
}

// Result is the runner-independent outcome of a pipeline execution.
type Result interface {
	// Elements returns the materialized elements of a collection in
	// processing order, or nil for runners that do not materialize
	// collections (the engine runners write only to their sinks).
	Elements(PCollection) []any
	// OperatorCount reports how many engine operators the translation
	// produced — the per-primitive expansion the paper quantifies, and
	// the number the fusion optimizer reduces.
	OperatorCount() int
	// Metrics maps engine operator (or aggregate counter) names to
	// emitted record counts.
	Metrics() map[string]int64
}

// Runner executes pipelines; implementations translate the validated
// pipeline to their engine and block until completion. Cancellation is
// coarse-grained: the engine runners honor ctx only before launching
// (an in-flight engine run completes), while the direct runner also
// checks between stages.
type Runner interface {
	Run(ctx context.Context, p *Pipeline, opts Options) (Result, error)
}

var (
	runnersMu sync.RWMutex
	runners   = make(map[string]Runner)
)

// RegisterRunner makes a runner selectable by name through GetRunner.
// Runner packages call it from init (import the package, or
// beambench/internal/beam/runners for all of them, to register). It
// panics on an empty name or a duplicate registration, which are
// programming errors.
func RegisterRunner(name string, r Runner) {
	if name == "" {
		panic("beam: RegisterRunner with empty name")
	}
	if r == nil {
		panic("beam: RegisterRunner with nil runner")
	}
	runnersMu.Lock()
	defer runnersMu.Unlock()
	if _, dup := runners[name]; dup {
		panic(fmt.Sprintf("beam: RegisterRunner called twice for %q", name))
	}
	runners[name] = r
}

// GetRunner returns the runner registered under name.
func GetRunner(name string) (Runner, error) {
	runnersMu.RLock()
	defer runnersMu.RUnlock()
	r, ok := runners[name]
	if !ok {
		return nil, fmt.Errorf("beam: no runner %q registered (have %v)", name, runnerNamesLocked())
	}
	return r, nil
}

// RunnerNames lists the registered runner names in sorted order.
func RunnerNames() []string {
	runnersMu.RLock()
	defer runnersMu.RUnlock()
	return runnerNamesLocked()
}

func runnerNamesLocked() []string {
	names := make([]string, 0, len(runners))
	for name := range runners {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
