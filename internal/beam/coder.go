package beam

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// Coder encodes and decodes elements at PCollection boundaries. Engine
// runners invoke coders whenever an element crosses a translated
// operator boundary — the serialization work behind a large share of the
// abstraction-layer overhead the paper measures.
type Coder interface {
	// Name identifies the coder for compatibility checks.
	Name() string
	// Encode serializes an element.
	Encode(v any) ([]byte, error)
	// Decode reverses Encode.
	Decode(b []byte) (any, error)
}

// BytesCoder passes []byte elements through with a defensive copy.
type BytesCoder struct{}

// Name implements Coder.
func (BytesCoder) Name() string { return "bytes" }

// Encode implements Coder.
func (BytesCoder) Encode(v any) ([]byte, error) {
	b, ok := v.([]byte)
	if !ok {
		return nil, fmt.Errorf("beam: bytes coder: element %T is not []byte", v)
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// Decode implements Coder.
func (BytesCoder) Decode(b []byte) (any, error) {
	out := make([]byte, len(b))
	copy(out, b)
	return out, nil
}

// StringUTF8Coder codes string elements.
type StringUTF8Coder struct{}

// Name implements Coder.
func (StringUTF8Coder) Name() string { return "stringutf8" }

// Encode implements Coder.
func (StringUTF8Coder) Encode(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, fmt.Errorf("beam: string coder: element %T is not a string", v)
	}
	//beamvet:allow hotalloc the encoded bytes are handed to the engine and must not alias the element
	return []byte(s), nil
}

// Decode implements Coder.
func (StringUTF8Coder) Decode(b []byte) (any, error) {
	//beamvet:allow hotalloc the decoded element owns its bytes; the input buffer is the engine's to reuse
	return string(b), nil
}

// VarIntCoder codes int64 (and int) elements as zig-zag varints.
type VarIntCoder struct{}

// Name implements Coder.
func (VarIntCoder) Name() string { return "varint" }

// Encode implements Coder.
func (VarIntCoder) Encode(v any) ([]byte, error) {
	var n int64
	switch x := v.(type) {
	case int64:
		n = x
	case int:
		n = int64(x)
	default:
		return nil, fmt.Errorf("beam: varint coder: element %T is not an integer", v)
	}
	buf := make([]byte, binary.MaxVarintLen64)
	return buf[:binary.PutVarint(buf, n)], nil
}

// Decode implements Coder.
func (VarIntCoder) Decode(b []byte) (any, error) {
	n, read := binary.Varint(b)
	if read <= 0 {
		return nil, errors.New("beam: varint coder: malformed input")
	}
	return n, nil
}

// KVCoder codes KV elements with length-prefixed key and value.
type KVCoder struct {
	Key   Coder
	Value Coder
}

// Name implements Coder.
func (c KVCoder) Name() string {
	return fmt.Sprintf("kv<%s,%s>", coderName(c.Key), coderName(c.Value))
}

func coderName(c Coder) string {
	if c == nil {
		return "nil"
	}
	return c.Name()
}

// Encode implements Coder.
func (c KVCoder) Encode(v any) ([]byte, error) {
	kv, ok := v.(KV)
	if !ok {
		return nil, fmt.Errorf("beam: kv coder: element %T is not a KV", v)
	}
	if c.Key == nil || c.Value == nil {
		return nil, errors.New("beam: kv coder: missing component coder")
	}
	kb, err := c.Key.Encode(kv.Key)
	if err != nil {
		return nil, fmt.Errorf("beam: kv coder key: %w", err)
	}
	vb, err := c.Value.Encode(kv.Value)
	if err != nil {
		return nil, fmt.Errorf("beam: kv coder value: %w", err)
	}
	out := make([]byte, 0, len(kb)+len(vb)+2*binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(len(kb)))
	out = append(out, kb...)
	out = binary.AppendUvarint(out, uint64(len(vb)))
	out = append(out, vb...)
	return out, nil
}

// Decode implements Coder.
func (c KVCoder) Decode(b []byte) (any, error) {
	if c.Key == nil || c.Value == nil {
		return nil, errors.New("beam: kv coder: missing component coder")
	}
	klen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < klen {
		return nil, errors.New("beam: kv coder: malformed key length")
	}
	b = b[n:]
	key, err := c.Key.Decode(b[:klen])
	if err != nil {
		return nil, fmt.Errorf("beam: kv coder key: %w", err)
	}
	b = b[klen:]
	vlen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < vlen {
		return nil, errors.New("beam: kv coder: malformed value length")
	}
	b = b[n:]
	val, err := c.Value.Decode(b[:vlen])
	if err != nil {
		return nil, fmt.Errorf("beam: kv coder value: %w", err)
	}
	return KV{Key: key, Value: val}, nil
}

// KafkaRecordCoder codes KafkaRecord elements (KafkaIO's raw output).
type KafkaRecordCoder struct{}

// Name implements Coder.
func (KafkaRecordCoder) Name() string { return "kafkarecord" }

// Encode implements Coder.
func (KafkaRecordCoder) Encode(v any) ([]byte, error) {
	r, ok := v.(KafkaRecord)
	if !ok {
		return nil, fmt.Errorf("beam: kafka record coder: element %T is not a KafkaRecord", v)
	}
	out := make([]byte, 0, len(r.Topic)+len(r.Key)+len(r.Value)+5*binary.MaxVarintLen64)
	out = binary.AppendUvarint(out, uint64(len(r.Topic)))
	out = append(out, r.Topic...)
	out = binary.AppendVarint(out, int64(r.Partition))
	out = binary.AppendVarint(out, r.Offset)
	out = binary.AppendVarint(out, r.Timestamp.UnixNano())
	out = binary.AppendUvarint(out, uint64(len(r.Key)))
	out = append(out, r.Key...)
	out = binary.AppendUvarint(out, uint64(len(r.Value)))
	out = append(out, r.Value...)
	return out, nil
}

// Decode implements Coder.
func (KafkaRecordCoder) Decode(b []byte) (any, error) {
	fail := errors.New("beam: kafka record coder: malformed input")
	tlen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < tlen {
		return nil, fail
	}
	b = b[n:]
	//beamvet:allow hotalloc the decoded topic owns its bytes; the input buffer is the engine's to reuse
	topic := string(b[:tlen])
	b = b[tlen:]
	part, n := binary.Varint(b)
	if n <= 0 {
		return nil, fail
	}
	b = b[n:]
	off, n := binary.Varint(b)
	if n <= 0 {
		return nil, fail
	}
	b = b[n:]
	tsNano, n := binary.Varint(b)
	if n <= 0 {
		return nil, fail
	}
	b = b[n:]
	klen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < klen {
		return nil, fail
	}
	b = b[n:]
	key := append([]byte(nil), b[:klen]...)
	b = b[klen:]
	vlen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < vlen {
		return nil, fail
	}
	b = b[n:]
	val := append([]byte(nil), b[:vlen]...)
	return KafkaRecord{
		Topic:     topic,
		Partition: int(part),
		Offset:    off,
		Timestamp: time.Unix(0, tsNano).UTC(),
		Key:       key,
		Value:     val,
	}, nil
}

// GroupedCoder codes Grouped elements; only string/bytes keys and values
// are supported, sufficient for the SDK's built-in aggregations. The
// pane's window travels with the element (a kind tag plus interval
// bounds), so windowed aggregates keep their window across the engine
// runners' coder boundaries.
type GroupedCoder struct{}

// Name implements Coder.
func (GroupedCoder) Name() string { return "grouped" }

// Window kind tags in the Grouped wire format.
const (
	groupedGlobalWindow   = 0
	groupedIntervalWindow = 1
)

// Encode implements Coder.
func (GroupedCoder) Encode(v any) ([]byte, error) {
	g, ok := v.(Grouped)
	if !ok {
		return nil, fmt.Errorf("beam: grouped coder: element %T is not Grouped", v)
	}
	key, err := scalarToBytes(g.Key)
	if err != nil {
		return nil, err
	}
	// One sizing pass keeps the per-group encode to a single
	// allocation: varint headers are bounded by MaxVarintLen64, and the
	// values are strings or byte slices whose lengths are known.
	size := 2 + 4*binary.MaxVarintLen64 + len(key)
	for _, val := range g.Values {
		size += binary.MaxVarintLen64
		switch x := val.(type) {
		case string:
			size += len(x)
		case []byte:
			size += len(x)
		}
	}
	out := make([]byte, 0, size)
	out = binary.AppendUvarint(out, uint64(len(key)))
	out = append(out, key...)
	switch w := g.Window.(type) {
	case nil, GlobalWindow:
		out = append(out, groupedGlobalWindow)
	case IntervalWindow:
		out = append(out, groupedIntervalWindow)
		out = binary.AppendVarint(out, w.Start.UnixNano())
		out = binary.AppendVarint(out, w.End.UnixNano())
	default:
		return nil, fmt.Errorf("beam: grouped coder: unsupported window type %T", g.Window)
	}
	out = binary.AppendUvarint(out, uint64(len(g.Values)))
	for _, val := range g.Values {
		vb, err := scalarToBytes(val)
		if err != nil {
			return nil, err
		}
		out = binary.AppendUvarint(out, uint64(len(vb)))
		out = append(out, vb...)
	}
	return out, nil
}

// Decode implements Coder. Keys and values decode as strings.
func (GroupedCoder) Decode(b []byte) (any, error) {
	fail := errors.New("beam: grouped coder: malformed input")
	klen, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < klen {
		return nil, fail
	}
	b = b[n:]
	//beamvet:allow hotalloc the decoded key owns its bytes; the input buffer is the engine's to reuse
	g := Grouped{Key: string(b[:klen])}
	b = b[klen:]
	if len(b) == 0 {
		return nil, fail
	}
	kind := b[0]
	b = b[1:]
	switch kind {
	case groupedGlobalWindow:
		g.Window = GlobalWindow{}
	case groupedIntervalWindow:
		start, n := binary.Varint(b)
		if n <= 0 {
			return nil, fail
		}
		b = b[n:]
		end, n := binary.Varint(b)
		if n <= 0 {
			return nil, fail
		}
		b = b[n:]
		g.Window = IntervalWindow{Start: time.Unix(0, start).UTC(), End: time.Unix(0, end).UTC()}
	default:
		return nil, fail
	}
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fail
	}
	b = b[n:]
	g.Values = make([]any, 0, count)
	for range count {
		vlen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < vlen {
			return nil, fail
		}
		b = b[n:]
		//beamvet:allow hotalloc decoded values own their bytes; the input buffer is the engine's to reuse
		g.Values = append(g.Values, string(b[:vlen]))
		b = b[vlen:]
	}
	return g, nil
}

func scalarToBytes(v any) ([]byte, error) {
	switch x := v.(type) {
	case string:
		//beamvet:allow hotalloc the wire copy detaches the value from the element; callers append it into the frame
		return []byte(x), nil
	case []byte:
		return x, nil
	default:
		return nil, fmt.Errorf("beam: grouped coder: unsupported component %T", v)
	}
}
