// Package apexrunner translates Beam pipelines into applications on the
// Apex engine simulator. Its translation choices reproduce the paper's
// most extreme result (Hesse et al., ICDCS 2019, Figure 11: slowdowns of
// 32-58x for output-heavy queries but ~1x for grep):
//
//   - By default the ParDo chain is fused into a single Apex operator
//     (an executable stage deployed with container-local stream
//     locality) by the shared fusion pass (internal/beam/graphx), so the
//     *input* path performs like a native Apex job — elements pass
//     between fused DoFns in memory without coder round trips. This is
//     why the paper measures Beam-on-Apex grep on par with native Apex
//     (sf 0.91) while Beam-on-Flink pays for every one of its unchained
//     operator boundaries. beam.FusionOff disables the pass, deploying
//     one operator per ParDo with a coder boundary at each hop, so the
//     unfused abstraction cost is measurable on Apex too.
//   - The *output* path is pathological in both modes: the stream into
//     the Kafka output operator publishes per tuple through the buffer
//     server, and the output operator writes synchronously — one produce
//     request per record (producer batch size 1) plus per-record KafkaIO
//     write bookkeeping. The cost therefore scales with output volume:
//     catastrophic for identity/projection (100% output), roughly half
//     for sample (40%), negligible for grep (0.3%).
//   - The output operator is pinned to a single partition: the output
//     topic has one partition, so synchronous writes cannot be
//     parallelized away — raising the paper-observed effect that higher
//     parallelism does not help Beam-on-Apex (Figure 6: 237.5s at P1 vs
//     241.0s at P2).
package apexrunner

import (
	"context"
	"errors"
	"fmt"

	"beambench/internal/apex"
	"beambench/internal/beam"
	"beambench/internal/beam/graphx"
	"beambench/internal/metrics"
	"beambench/internal/simcost"
	"beambench/internal/yarn"
)

// Name is the runner's registry name.
const Name = "apex"

func init() {
	beam.RegisterRunner(Name, Runner{})
}

// ErrUnsupported marks transforms and shapes this runner cannot
// translate. It wraps the shared beam.ErrUnsupported sentinel, so
// callers can match capability gaps without naming the runner.
var ErrUnsupported = fmt.Errorf("apexrunner: %w", beam.ErrUnsupported)

// Operator names used in the translated DAG.
const (
	// NameRead is the Kafka input operator.
	NameRead = "KafkaIO.Read"
	// NameStage is the fused ParDo chain (Beam executable stage).
	NameStage = "ExecutableStage"
	// NameWrite is the Kafka output operator.
	NameWrite = "KafkaIO.Write"
)

// Config parameterizes a pipeline execution.
type Config struct {
	// Cluster is the YARN cluster to deploy on.
	Cluster *yarn.Cluster
	// Parallelism is the operator partition count, configured through
	// YARN vcores plus a DAG attribute as in the paper. Defaults to 1.
	Parallelism int
	// Costs is the latency model shared with the engine.
	Costs simcost.Costs
	// Sim scales the cost model; nil charges nothing.
	Sim *simcost.Simulator
	// Fusion selects the translation mode. The Apex runner's default is
	// fused — the executable-stage deployment the paper measures.
	Fusion beam.FusionMode
	// Metrics, when non-nil, receives per-operator throughput from the
	// deployed application's partitions. Nil disables collection.
	Metrics *metrics.Collector
	// TargetRecords bounds every KafkaRead by the total record count the
	// topic will eventually hold (see beam.Options.TargetRecords); 0
	// snapshots the topic contents at partition setup.
	TargetRecords int64
}

// Runner implements beam.Runner: it builds a fresh YARN cluster from
// the options, launches the application and tears the cluster down.
type Runner struct{}

// Run implements beam.Runner.
func (Runner) Run(ctx context.Context, p *beam.Pipeline, opts beam.Options) (beam.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cluster, err := yarn.NewCluster(yarn.ClusterConfig{})
	if err != nil {
		return nil, err
	}
	cluster.Start()
	defer cluster.Stop()
	res, err := Run(p, Config{
		Cluster:       cluster,
		Parallelism:   opts.EffectiveParallelism(),
		Costs:         opts.EffectiveCosts(),
		Sim:           opts.Sim,
		Fusion:        opts.Fusion,
		Metrics:       opts.Metrics,
		TargetRecords: opts.TargetRecords,
	})
	if err != nil {
		return nil, err
	}
	return &result{app: res}, nil
}

// result adapts an apex.AppResult to beam.Result.
type result struct {
	app *apex.AppResult
}

func (r *result) Elements(beam.PCollection) []any { return nil }

func (r *result) OperatorCount() int { return len(r.app.Operators) }

func (r *result) Metrics() map[string]int64 {
	out := make(map[string]int64, len(r.app.Operators))
	for _, o := range r.app.Operators {
		out[o.Name] += o.TuplesOut
	}
	return out
}

// Run translates and executes the pipeline, blocking until completion.
func Run(p *beam.Pipeline, cfg Config) (*apex.AppResult, error) {
	app, launch, err := Translate(p, cfg)
	if err != nil {
		return nil, err
	}
	stram, err := apex.Launch(cfg.Cluster, app, launch)
	if err != nil {
		return nil, err
	}
	return stram.Await()
}

// linearPlan is the normalized shape this runner translates: one source,
// a chain of ParDo / WindowInto / GroupByKey stages (ParDos a single
// transform each, or a whole fused chain), one Kafka sink.
type linearPlan struct {
	read   *graphx.Stage // KindKafkaRead or KindCreate
	stages []*graphx.Stage
	write  *graphx.Stage
}

// normalize validates that the lowered plan is a linear
// source-operators-sink chain and returns its stages in order.
func normalize(plan *graphx.Plan) (*linearPlan, error) {
	var lp linearPlan
	prevOut := -1
	for _, s := range plan.Stages {
		switch s.Kind() {
		case beam.KindKafkaRead, beam.KindCreate:
			if lp.read != nil {
				return nil, fmt.Errorf("%w: multiple sources", ErrUnsupported)
			}
			lp.read = s
		case beam.KindParDo, beam.KindWindowInto, beam.KindGroupByKey:
			if lp.read == nil || s.Inputs()[0].ID() != prevOut {
				return nil, fmt.Errorf("%w: non-linear pipeline", ErrUnsupported)
			}
			lp.stages = append(lp.stages, s)
		case beam.KindKafkaWrite:
			if lp.write != nil {
				return nil, fmt.Errorf("%w: multiple sinks", ErrUnsupported)
			}
			if s.Inputs()[0].ID() != prevOut {
				return nil, fmt.Errorf("%w: non-linear pipeline", ErrUnsupported)
			}
			lp.write = s
			continue
		default:
			return nil, fmt.Errorf("%w: %v (%s)", ErrUnsupported, s.Kind(), s.Name())
		}
		if s.Output().Valid() {
			prevOut = s.Output().ID()
		}
	}
	if lp.read == nil {
		return nil, fmt.Errorf("%w: pipeline has no source", ErrUnsupported)
	}
	if lp.write == nil {
		return nil, fmt.Errorf("%w: pipeline has no KafkaIO.Write sink", ErrUnsupported)
	}
	return &lp, nil
}

// Translate builds the Apex application for a pipeline without running
// it, returning the application and its launch configuration.
func Translate(p *beam.Pipeline, cfg Config) (*apex.Application, apex.LaunchConfig, error) {
	var zero apex.LaunchConfig
	if cfg.Cluster == nil {
		return nil, zero, errors.New("apexrunner: nil cluster")
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.Parallelism < 0 {
		return nil, zero, fmt.Errorf("apexrunner: negative parallelism %d", cfg.Parallelism)
	}
	plan, err := graphx.Lower(p, graphx.Options{Fusion: cfg.Fusion.Enabled(true)})
	if err != nil {
		return nil, zero, err
	}
	lp, err := normalize(plan)
	if err != nil {
		return nil, zero, err
	}

	app := apex.NewApplication("beam")

	// Source.
	var sourceIsKafka bool
	topic := ""
	switch lp.read.Kind() {
	case beam.KindKafkaRead:
		rc, ok := lp.read.Transforms[0].Config.(beam.KafkaReadConfig)
		if !ok {
			return nil, zero, errors.New("apexrunner: malformed KafkaRead config")
		}
		app.AddInput(NameRead, apex.KafkaInput(rc.Broker, rc.Topic, cfg.TargetRecords))
		sourceIsKafka = true
		topic = rc.Topic
	case beam.KindCreate:
		values, ok := lp.read.Transforms[0].Config.([]any)
		if !ok {
			return nil, zero, errors.New("apexrunner: malformed Create config")
		}
		encoded, err := encodeAll(values, lp.read.Output().Coder())
		if err != nil {
			return nil, zero, fmt.Errorf("apexrunner: Create: %w", err)
		}
		app.AddInput(NameRead, apex.SliceInput(encoded))
	}

	wc, ok := lp.write.Transforms[0].Config.(beam.KafkaWriteConfig)
	if !ok {
		return nil, zero, errors.New("apexrunner: malformed KafkaWrite config")
	}

	// One Apex operator per plan stage. A fused ParDo chain is a single
	// executable stage (the paper's deployment); unfused, every ParDo
	// pays a buffer-server hop and a coder boundary per record. A
	// WindowInto forwards records (strategy metadata only), and a
	// GroupByKey deploys the shared stateful executable behind a keyed
	// stream, so equal keys meet in one partition. An empty chain (read
	// straight into write) still deploys one forwarding stage,
	// preserving the three-operator minimum shape.
	names := stageNames(lp.stages)
	prev := NameRead
	for i, s := range lp.stages {
		streamName := fmt.Sprintf("stream%d", i)
		switch s.Kind() {
		case beam.KindParDo:
			entry := entrySpec{decode: s.Inputs()[0].Coder()}
			if i == 0 {
				entry = sourceEntry(sourceIsKafka, topic, lp.read.Output().Coder())
			}
			exit := exitSpec{encode: s.Output().Coder()}
			if i == len(lp.stages)-1 {
				exit = exitSpec{toSink: true}
			}
			app.AddOperator(names[i], stageOp(names[i], s.Fn(), entry, exit, cfg.Costs))
			app.AddStream(streamName, prev, names[i])

		case beam.KindWindowInto:
			ws, ok := s.Transforms[0].Config.(beam.WindowingStrategy)
			if !ok {
				return nil, zero, errors.New("apexrunner: malformed WindowInto config")
			}
			if !ws.IsGlobal() && ws.EventTime == nil {
				return nil, zero, fmt.Errorf("%w: non-global windowing (%s) without an event-time extractor",
					ErrUnsupported, ws.Fn.Name())
			}
			if i == 0 || i == len(lp.stages)-1 {
				return nil, zero, fmt.Errorf("%w: WindowInto adjacent to source or sink", ErrUnsupported)
			}
			// Re-windowing carries only strategy metadata (consumed by
			// the downstream GroupByKey); at runtime it forwards the
			// encoded records unchanged.
			app.AddOperator(names[i], forwardOp(cfg.Costs))
			app.AddStream(streamName, prev, names[i])

		case beam.KindGroupByKey:
			t := s.Transforms[0]
			kvCoder, ok := t.Inputs[0].Coder().(beam.KVCoder)
			if !ok {
				return nil, zero, fmt.Errorf("%w: GroupByKey over coder %s", ErrUnsupported, t.Inputs[0].Coder().Name())
			}
			if i == 0 || i == len(lp.stages)-1 {
				return nil, zero, fmt.Errorf("%w: GroupByKey adjacent to source or sink", ErrUnsupported)
			}
			gbkCfg := graphx.GBKConfig{
				Windowing: t.Inputs[0].Windowing(),
				Input:     kvCoder,
				Output:    t.Output.Coder(),
				Costs:     cfg.Costs,
				// At parallelism 1 every stream is a FIFO 1-to-1 channel,
				// so the instance's inputs are event-time ordered and the
				// watermark may advance from observations. Above that,
				// the intermediate multi-partition stages re-interleave
				// tuples round-robin with disorder bounded only by
				// channel buffering, so the only sound watermark is the
				// conservative one: no progress until end of input.
				Conservative: cfg.Parallelism > 1,
			}
			if _, err := graphx.NewGBKState(gbkCfg); err != nil {
				if errors.Is(err, beam.ErrUnsupported) {
					return nil, zero, fmt.Errorf("%w: %v", ErrUnsupported, err)
				}
				return nil, zero, fmt.Errorf("apexrunner: %w", err)
			}
			app.AddOperator(names[i], gbkOp(gbkCfg))
			// Keyed partitioning: the stream into the stateful operator
			// hashes the encoded KV key, and panes flush on streaming
			// window boundaries (EndWindow) plus at end of stream.
			app.AddStream(streamName, prev, names[i])
			app.SetStreamKeyed(streamName, graphx.EncodedKVKey)
		}
		prev = names[i]
	}
	if len(lp.stages) == 0 {
		app.AddOperator(NameStage, stageOp(NameStage, nil, sourceEntry(sourceIsKafka, topic, lp.read.Output().Coder()), exitSpec{toSink: true}, cfg.Costs))
		app.AddStream("stream0", prev, NameStage)
		prev = NameStage
	}

	// Sink: unbatched synchronous producer, fed by a per-tuple stream,
	// pinned to one partition (single-partition output topic).
	producerCfg := wc.Producer
	producerCfg.BatchSize = 1
	app.AddOutput(NameWrite, apex.KafkaOutput(wc.Broker, wc.Topic, producerCfg))
	app.AddStream("stageToWrite", prev, NameWrite)
	app.SetStreamPerTuple("stageToWrite", true)
	app.SetOperatorPartitions(NameWrite, 1)

	launch := apex.LaunchConfig{
		Parallelism: cfg.Parallelism,
		Costs:       cfg.Costs,
		Sim:         cfg.Sim,
		Metrics:     cfg.Metrics,
	}
	return app, launch, nil
}

// stageNames assigns unique operator names: the canonical fused-stage
// name for a fused chain, the transform name (deduplicated) otherwise.
func stageNames(stages []*graphx.Stage) []string {
	names := make([]string, len(stages))
	seen := make(map[string]bool)
	for i, s := range stages {
		name := s.Name()
		if s.Fused() {
			name = NameStage
		}
		if name == "" {
			name = fmt.Sprintf("ParDo%d", i)
		}
		if seen[name] {
			name = fmt.Sprintf("%s#%d", name, i)
		}
		seen[name] = true
		names[i] = name
	}
	return names
}

// entrySpec describes how a stage turns an incoming tuple into an
// element: wrapping a raw broker payload into a KafkaRecord (the first
// stage after a Kafka source) or decoding with the boundary coder.
type entrySpec struct {
	kafkaTopic string
	wrapKafka  bool
	decode     beam.Coder
}

func sourceEntry(sourceIsKafka bool, topic string, createCoder beam.Coder) entrySpec {
	if sourceIsKafka {
		return entrySpec{wrapKafka: true, kafkaTopic: topic}
	}
	return entrySpec{decode: createCoder}
}

// exitSpec describes the stage exit: serializing the payload for the
// synchronous Kafka sink, or encoding for the next operator boundary.
type exitSpec struct {
	toSink bool
	encode beam.Coder
}

// stageOp builds one operator executing a ParDo stage (a single DoFn or
// a fused chain; nil forwards elements unchanged). Fused, elements
// travel between the chained DoFns as in-memory values (container-local
// locality) and only one bundle-dispatch charge applies per record;
// unfused, each operator boundary pays a coder round trip. The exit
// into the sink charges the per-record synchronous write bookkeeping.
func stageOp(name string, fn beam.DoFn, entry entrySpec, exit exitSpec, costs simcost.Costs) apex.GenericFactory {
	return apex.ProcessOp(func(ctx apex.OperatorContext) (func([]byte, func([]byte) error) error, error) {
		if fn != nil {
			if s, ok := fn.(beam.Setupper); ok {
				if err := s.Setup(); err != nil {
					return nil, fmt.Errorf("apexrunner: stage %q setup: %w", name, err)
				}
			}
		}
		bctx := beam.Context{Window: beam.GlobalWindow{}}

		// Compose the stage once per operator instance; tupleEmit is
		// rebound per incoming tuple.
		var tupleEmit func([]byte) error
		out := beam.Emitter(func(v any) error {
			if exit.toSink {
				payload, ok := v.([]byte)
				if !ok {
					return fmt.Errorf("apexrunner: KafkaWrite element %T is not []byte", v)
				}
				ctx.Charge(costs.CoderPerRecord)
				ctx.Charge(costs.ProducerSyncSend)
				return tupleEmit(payload)
			}
			wire, err := exit.encode.Encode(v)
			if err != nil {
				return fmt.Errorf("apexrunner: stage encode: %w", err)
			}
			ctx.Charge(costs.CoderPerRecord)
			return tupleEmit(wire)
		})
		chain := out
		if fn != nil {
			chain = func(v any) error {
				return fn.ProcessElement(bctx, v, out)
			}
		}

		return func(tuple []byte, emit func([]byte) error) error {
			// Stage entry: wrap or decode exactly once. Decoding pays
			// the boundary coder cost, like the other runners' per-
			// operator decode; wrapping a raw Kafka payload is free.
			var elem any
			if entry.wrapKafka {
				elem = beam.KafkaRecord{Topic: entry.kafkaTopic, Value: tuple}
			} else {
				decoded, err := entry.decode.Decode(tuple)
				if err != nil {
					return fmt.Errorf("apexrunner: stage decode: %w", err)
				}
				ctx.Charge(costs.CoderPerRecord)
				elem = decoded
			}
			ctx.Charge(costs.BeamDoFnPerRecord)
			tupleEmit = emit
			return chain(elem)
		}, nil
	})
}

// forwardOp forwards encoded records unchanged, charging only the
// bundle dispatch — the runtime shape of a metadata-only transform
// (WindowInto), matching the other runners' forwarding operators.
func forwardOp(costs simcost.Costs) apex.GenericFactory {
	return apex.ProcessOp(func(ctx apex.OperatorContext) (func([]byte, func([]byte) error) error, error) {
		return func(tuple []byte, emit func([]byte) error) error {
			ctx.Charge(costs.BeamDoFnPerRecord)
			return emit(tuple)
		}, nil
	})
}

// gbkOperator adapts the shared GroupByKey executable to the engine:
// tuples arrive tagged with their upstream partition (SenderAware, one
// watermark per ordered upstream stream — minimum-across-inputs
// propagation), watermark-ready panes flush at streaming-window
// boundaries (WindowEndAware), and the remaining state drains at end of
// stream (StreamFlusher).
type gbkOperator struct {
	state *graphx.GBKState
}

func (o *gbkOperator) Process(t []byte, emit func([]byte) error) error {
	return o.state.Process(t, emit)
}

func (o *gbkOperator) ProcessFrom(from int, t []byte, emit func([]byte) error) error {
	return o.state.ProcessFrom(from, t, emit)
}

func (o *gbkOperator) EndWindow(emit func([]byte) error) error {
	return o.state.FireReady(emit)
}

func (o *gbkOperator) EndStream(emit func([]byte) error) error {
	return o.state.Flush(emit)
}

func (o *gbkOperator) Teardown() error { return nil }

// gbkOp builds the keyed stateful GroupByKey operator, one shared-state
// executable per partition, with per-input watermark tracking sized to
// the upstream partition count.
func gbkOp(cfg graphx.GBKConfig) apex.GenericFactory {
	return func(ctx apex.OperatorContext) (apex.GenericOperator, error) {
		cfg := cfg
		cfg.Charge = ctx.Charge
		cfg.Inputs = ctx.InputPartitions()
		state, err := graphx.NewGBKState(cfg)
		if err != nil {
			return nil, fmt.Errorf("apexrunner: %w", err)
		}
		return &gbkOperator{state: state}, nil
	}
}

func encodeAll(values []any, coder beam.Coder) ([][]byte, error) {
	out := make([][]byte, len(values))
	for i, v := range values {
		b, err := coder.Encode(v)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}
