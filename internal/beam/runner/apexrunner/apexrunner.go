// Package apexrunner translates Beam pipelines into applications on the
// Apex engine simulator. Its translation choices reproduce the paper's
// most extreme result (Hesse et al., ICDCS 2019, Figure 11: slowdowns of
// 32-58x for output-heavy queries but ~1x for grep):
//
//   - The ParDo chain is fused into a single Apex operator (an
//     executable stage deployed with container-local stream locality),
//     so the *input* path performs like a native Apex job — elements
//     pass between fused DoFns in memory without coder round trips.
//     This is why the paper measures Beam-on-Apex grep on par with
//     native Apex (sf 0.91) while Beam-on-Flink pays for every one of
//     its unchained operator boundaries.
//   - The *output* path is pathological: the stream into the Kafka
//     output operator publishes per tuple through the buffer server, and
//     the output operator writes synchronously — one produce request per
//     record (producer batch size 1) plus per-record KafkaIO write
//     bookkeeping. The cost therefore scales with output volume:
//     catastrophic for identity/projection (100% output), roughly half
//     for sample (40%), negligible for grep (0.3%).
//   - The output operator is pinned to a single partition: the output
//     topic has one partition, so synchronous writes cannot be
//     parallelized away — raising the paper-observed effect that higher
//     parallelism does not help Beam-on-Apex (Figure 6: 237.5s at P1 vs
//     241.0s at P2).
package apexrunner

import (
	"errors"
	"fmt"

	"beambench/internal/apex"
	"beambench/internal/beam"
	"beambench/internal/simcost"
	"beambench/internal/yarn"
)

// ErrUnsupported marks transforms and shapes this runner cannot
// translate.
var ErrUnsupported = errors.New("apexrunner: unsupported transform")

// Operator names used in the translated DAG.
const (
	// NameRead is the Kafka input operator.
	NameRead = "KafkaIO.Read"
	// NameStage is the fused ParDo chain (Beam executable stage).
	NameStage = "ExecutableStage"
	// NameWrite is the Kafka output operator.
	NameWrite = "KafkaIO.Write"
)

// Config parameterizes a pipeline execution.
type Config struct {
	// Cluster is the YARN cluster to deploy on.
	Cluster *yarn.Cluster
	// Parallelism is the operator partition count, configured through
	// YARN vcores plus a DAG attribute as in the paper. Defaults to 1.
	Parallelism int
	// Costs is the latency model shared with the engine.
	Costs simcost.Costs
	// Sim scales the cost model; nil charges nothing.
	Sim *simcost.Simulator
}

// Run translates and executes the pipeline, blocking until completion.
func Run(p *beam.Pipeline, cfg Config) (*apex.AppResult, error) {
	app, launch, err := Translate(p, cfg)
	if err != nil {
		return nil, err
	}
	stram, err := apex.Launch(cfg.Cluster, app, launch)
	if err != nil {
		return nil, err
	}
	return stram.Await()
}

// linearPipeline is the normalized shape this runner translates: one
// source, a chain of ParDos, one Kafka sink.
type linearPipeline struct {
	read   *beam.Transform // KindKafkaRead or KindCreate
	parDos []*beam.Transform
	write  *beam.Transform
}

// normalize validates that the pipeline is a linear source-ParDos-sink
// chain and returns its stages in order.
func normalize(p *beam.Pipeline) (*linearPipeline, error) {
	var lp linearPipeline
	prevOut := -1
	for _, t := range p.Transforms() {
		switch t.Kind {
		case beam.KindKafkaRead, beam.KindCreate:
			if lp.read != nil {
				return nil, fmt.Errorf("%w: multiple sources", ErrUnsupported)
			}
			lp.read = t
		case beam.KindParDo:
			if lp.read == nil || t.Inputs[0].ID() != prevOut {
				return nil, fmt.Errorf("%w: non-linear pipeline", ErrUnsupported)
			}
			lp.parDos = append(lp.parDos, t)
		case beam.KindKafkaWrite:
			if lp.write != nil {
				return nil, fmt.Errorf("%w: multiple sinks", ErrUnsupported)
			}
			if t.Inputs[0].ID() != prevOut {
				return nil, fmt.Errorf("%w: non-linear pipeline", ErrUnsupported)
			}
			lp.write = t
			continue
		default:
			return nil, fmt.Errorf("%w: %v (%s)", ErrUnsupported, t.Kind, t.Name)
		}
		if t.Output.Valid() {
			prevOut = t.Output.ID()
		}
	}
	if lp.read == nil {
		return nil, fmt.Errorf("%w: pipeline has no source", ErrUnsupported)
	}
	if lp.write == nil {
		return nil, fmt.Errorf("%w: pipeline has no KafkaIO.Write sink", ErrUnsupported)
	}
	return &lp, nil
}

// Translate builds the Apex application for a pipeline without running
// it, returning the application and its launch configuration.
func Translate(p *beam.Pipeline, cfg Config) (*apex.Application, apex.LaunchConfig, error) {
	var zero apex.LaunchConfig
	if cfg.Cluster == nil {
		return nil, zero, errors.New("apexrunner: nil cluster")
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.Parallelism < 0 {
		return nil, zero, fmt.Errorf("apexrunner: negative parallelism %d", cfg.Parallelism)
	}
	if err := p.Validate(); err != nil {
		return nil, zero, err
	}
	lp, err := normalize(p)
	if err != nil {
		return nil, zero, err
	}

	app := apex.NewApplication("beam")

	// Source.
	var sourceIsKafka bool
	switch lp.read.Kind {
	case beam.KindKafkaRead:
		rc, ok := lp.read.Config.(beam.KafkaReadConfig)
		if !ok {
			return nil, zero, errors.New("apexrunner: malformed KafkaRead config")
		}
		app.AddInput(NameRead, apex.KafkaInput(rc.Broker, rc.Topic))
		sourceIsKafka = true
	case beam.KindCreate:
		values, ok := lp.read.Config.([]any)
		if !ok {
			return nil, zero, errors.New("apexrunner: malformed Create config")
		}
		encoded, err := encodeAll(values, lp.read.Output.Coder())
		if err != nil {
			return nil, zero, fmt.Errorf("apexrunner: Create: %w", err)
		}
		app.AddInput(NameRead, apex.SliceInput(encoded))
	}

	// Fused executable stage.
	wc, ok := lp.write.Config.(beam.KafkaWriteConfig)
	if !ok {
		return nil, zero, errors.New("apexrunner: malformed KafkaWrite config")
	}
	app.AddOperator(NameStage, fusedStage(lp, sourceIsKafka, cfg.Costs))
	app.AddStream("readToStage", NameRead, NameStage)

	// Sink: unbatched synchronous producer, fed by a per-tuple stream,
	// pinned to one partition (single-partition output topic).
	producerCfg := wc.Producer
	producerCfg.BatchSize = 1
	app.AddOutput(NameWrite, apex.KafkaOutput(wc.Broker, wc.Topic, producerCfg))
	app.AddStream("stageToWrite", NameStage, NameWrite)
	app.SetStreamPerTuple("stageToWrite", true)
	app.SetOperatorPartitions(NameWrite, 1)

	launch := apex.LaunchConfig{
		Parallelism: cfg.Parallelism,
		Costs:       cfg.Costs,
		Sim:         cfg.Sim,
	}
	return app, launch, nil
}

// fusedStage builds the single operator executing the whole DoFn chain.
// Elements travel between fused DoFns as in-memory values (container-
// local locality): the entry decodes or wraps once, the exit charges the
// per-record synchronous write bookkeeping, and only one bundle-dispatch
// charge applies per record.
func fusedStage(lp *linearPipeline, sourceIsKafka bool, costs simcost.Costs) apex.GenericFactory {
	return apex.ProcessOp(func(ctx apex.OperatorContext) (func([]byte, func([]byte) error) error, error) {
		for _, t := range lp.parDos {
			if s, ok := t.Fn.(beam.Setupper); ok {
				if err := s.Setup(); err != nil {
					return nil, fmt.Errorf("apexrunner: DoFn %q setup: %w", t.Name, err)
				}
			}
		}
		readTopic := ""
		if sourceIsKafka {
			if rc, ok := lp.read.Config.(beam.KafkaReadConfig); ok {
				readTopic = rc.Topic
			}
		}
		inCoder := lp.read.Output.Coder()
		bctx := beam.Context{Window: beam.GlobalWindow{}}

		// Compose the DoFn chain once per stage instance. The stage exit
		// serializes for the sink and charges the synchronous KafkaIO
		// write bookkeeping per output record; tupleEmit is rebound per
		// incoming tuple.
		var tupleEmit func([]byte) error
		chain := beam.Emitter(func(v any) error {
			payload, ok := v.([]byte)
			if !ok {
				return fmt.Errorf("apexrunner: KafkaWrite element %T is not []byte", v)
			}
			ctx.Charge(costs.CoderPerRecord)
			ctx.Charge(costs.ProducerSyncSend)
			return tupleEmit(payload)
		})
		for i := len(lp.parDos) - 1; i >= 0; i-- {
			fn := lp.parDos[i].Fn
			downstream := chain
			chain = func(v any) error {
				return fn.ProcessElement(bctx, v, downstream)
			}
		}

		return func(tuple []byte, emit func([]byte) error) error {
			// Stage entry: wrap or decode exactly once.
			var elem any
			if sourceIsKafka {
				elem = beam.KafkaRecord{Topic: readTopic, Value: tuple}
			} else {
				decoded, err := inCoder.Decode(tuple)
				if err != nil {
					return fmt.Errorf("apexrunner: stage decode: %w", err)
				}
				elem = decoded
			}
			ctx.Charge(costs.BeamDoFnPerRecord)
			tupleEmit = emit
			return chain(elem)
		}, nil
	})
}

func encodeAll(values []any, coder beam.Coder) ([][]byte, error) {
	out := make([][]byte, len(values))
	for i, v := range values {
		b, err := coder.Encode(v)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}
