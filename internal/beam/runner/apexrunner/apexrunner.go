// Package apexrunner translates Beam pipelines into applications on the
// Apex engine simulator. Its translation choices reproduce the paper's
// most extreme result (Hesse et al., ICDCS 2019, Figure 11: slowdowns of
// 32-58x for output-heavy queries but ~1x for grep):
//
//   - By default the ParDo chain is fused into a single Apex operator
//     (an executable stage deployed with container-local stream
//     locality) by the shared fusion pass (internal/beam/graphx), so the
//     *input* path performs like a native Apex job — elements pass
//     between fused DoFns in memory without coder round trips. This is
//     why the paper measures Beam-on-Apex grep on par with native Apex
//     (sf 0.91) while Beam-on-Flink pays for every one of its unchained
//     operator boundaries. beam.FusionOff disables the pass, deploying
//     one operator per ParDo with a coder boundary at each hop, so the
//     unfused abstraction cost is measurable on Apex too.
//   - The *output* path is pathological in both modes: the stream into
//     the Kafka output operator publishes per tuple through the buffer
//     server, and the output operator writes synchronously — one produce
//     request per record (producer batch size 1) plus per-record KafkaIO
//     write bookkeeping. The cost therefore scales with output volume:
//     catastrophic for identity/projection (100% output), roughly half
//     for sample (40%), negligible for grep (0.3%).
//   - The output operator is pinned to a single partition: the output
//     topic has one partition, so synchronous writes cannot be
//     parallelized away — raising the paper-observed effect that higher
//     parallelism does not help Beam-on-Apex (Figure 6: 237.5s at P1 vs
//     241.0s at P2).
package apexrunner

import (
	"context"
	"errors"
	"fmt"
	"time"

	"beambench/internal/apex"
	"beambench/internal/beam"
	"beambench/internal/beam/graphx"
	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/simcost"
	"beambench/internal/yarn"
)

// Name is the runner's registry name.
const Name = "apex"

func init() {
	beam.RegisterRunner(Name, Runner{})
}

// ErrUnsupported marks transforms and shapes this runner cannot
// translate. It wraps the shared beam.ErrUnsupported sentinel, so
// callers can match capability gaps without naming the runner.
var ErrUnsupported = fmt.Errorf("apexrunner: %w", beam.ErrUnsupported)

// Operator names used in the translated DAG.
const (
	// NameRead is the Kafka input operator.
	NameRead = "KafkaIO.Read"
	// NameStage is the fused ParDo chain (Beam executable stage).
	NameStage = "ExecutableStage"
	// NameWrite is the Kafka output operator.
	NameWrite = "KafkaIO.Write"
)

// Config parameterizes a pipeline execution.
type Config struct {
	// Cluster is the YARN cluster to deploy on.
	Cluster *yarn.Cluster
	// Parallelism is the operator partition count, configured through
	// YARN vcores plus a DAG attribute as in the paper. Defaults to 1.
	Parallelism int
	// Costs is the latency model shared with the engine.
	Costs simcost.Costs
	// Sim scales the cost model; nil charges nothing.
	Sim *simcost.Simulator
	// Fusion selects the translation mode. The Apex runner's default is
	// fused — the executable-stage deployment the paper measures.
	Fusion beam.FusionMode
	// Metrics, when non-nil, receives per-operator throughput from the
	// deployed application's partitions. Nil disables collection.
	Metrics *metrics.Collector
	// Trace, when non-nil, records spans and watermark gauges from the
	// deployed application. Nil disables tracing.
	Trace *obs.Tracer
	// TargetRecords bounds every KafkaRead by the total record count the
	// topic will eventually hold (see beam.Options.TargetRecords); 0
	// snapshots the topic contents at partition setup.
	TargetRecords int64
}

// Runner implements beam.Runner: it builds a fresh YARN cluster from
// the options, launches the application and tears the cluster down.
type Runner struct{}

// Run implements beam.Runner.
func (Runner) Run(ctx context.Context, p *beam.Pipeline, opts beam.Options) (beam.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cluster, err := yarn.NewCluster(yarn.ClusterConfig{})
	if err != nil {
		return nil, err
	}
	cluster.Start()
	defer func() { cluster.Stop() }()
	cfg := Config{
		Cluster:       cluster,
		Parallelism:   opts.EffectiveParallelism(),
		Costs:         opts.EffectiveCosts(),
		Sim:           opts.Sim,
		Fusion:        opts.Fusion,
		Metrics:       opts.Metrics,
		Trace:         opts.Trace,
		TargetRecords: opts.TargetRecords,
	}
	// Unfused multi-source pipelines can translate to more operator
	// partitions than the default cluster's vcores. The runner owns this
	// ephemeral cluster, so it provisions enough node managers for the
	// translated application — the harness analog of requesting a large
	// enough YARN queue.
	app, _, err := Translate(p, cfg)
	if err != nil {
		return nil, err
	}
	// maxProvisionedVCores bounds the ephemeral cluster: enough headroom
	// for any translated DAG at benchmark parallelisms, while an absurd
	// parallelism still fails fast inside YARN instead of spinning up an
	// absurd simulated cluster.
	const maxProvisionedVCores = 64
	if need := app.RequiredVCores(cfg.Parallelism); need > cluster.TotalVCores() && need <= maxProvisionedVCores {
		perNode := 8
		bigger, err := yarn.NewCluster(yarn.ClusterConfig{
			NodeManagers: (need + perNode - 1) / perNode,
		})
		if err != nil {
			return nil, err
		}
		cluster.Stop()
		cluster = bigger
		cfg.Cluster = bigger
		cluster.Start()
	}
	res, err := Run(p, cfg)
	if err != nil {
		return nil, err
	}
	return &result{app: res}, nil
}

// result adapts an apex.AppResult to beam.Result.
type result struct {
	app *apex.AppResult
}

func (r *result) Elements(beam.PCollection) []any { return nil }

func (r *result) OperatorCount() int { return len(r.app.Operators) }

func (r *result) Metrics() map[string]int64 {
	out := make(map[string]int64, len(r.app.Operators))
	for _, o := range r.app.Operators {
		out[o.Name] += o.TuplesOut
	}
	return out
}

// Run translates and executes the pipeline, blocking until completion.
func Run(p *beam.Pipeline, cfg Config) (*apex.AppResult, error) {
	app, launch, err := Translate(p, cfg)
	if err != nil {
		return nil, err
	}
	stram, err := apex.Launch(cfg.Cluster, app, launch)
	if err != nil {
		return nil, err
	}
	return stram.Await()
}

// Translate builds the Apex application for a pipeline without running
// it, returning the application and its launch configuration. The
// translation is shape-general: any DAG of sources, ParDo stages (single
// or fused), Flatten merges, WindowInto assigners and keyed GroupByKey
// stages into one Kafka sink, each plan stage one Apex operator wired by
// buffer-server streams.
func Translate(p *beam.Pipeline, cfg Config) (*apex.Application, apex.LaunchConfig, error) {
	var zero apex.LaunchConfig
	if cfg.Cluster == nil {
		return nil, zero, errors.New("apexrunner: nil cluster")
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.Parallelism < 0 {
		return nil, zero, fmt.Errorf("apexrunner: negative parallelism %d", cfg.Parallelism)
	}
	plan, err := graphx.Lower(p, graphx.Options{Fusion: cfg.Fusion.Enabled(true)})
	if err != nil {
		return nil, zero, err
	}

	// sinkInput marks the collection feeding the KafkaWrite: the stage
	// producing it serializes for the synchronous sink on exit, so it
	// cannot also feed another stage (the exits differ).
	sinkInput := -1
	var wc beam.KafkaWriteConfig
	writes := 0
	for _, s := range plan.Stages {
		if s.Kind() != beam.KindKafkaWrite {
			continue
		}
		writes++
		c, ok := s.Transforms[0].Config.(beam.KafkaWriteConfig)
		if !ok {
			return nil, zero, errors.New("apexrunner: malformed KafkaWrite config")
		}
		wc = c
		sinkInput = s.Inputs()[0].ID()
	}
	if writes == 0 {
		return nil, zero, fmt.Errorf("%w: pipeline has no KafkaIO.Write sink", ErrUnsupported)
	}
	if writes > 1 {
		return nil, zero, fmt.Errorf("%w: multiple sinks", ErrUnsupported)
	}
	for _, s := range plan.Stages {
		if s.Kind() == beam.KindKafkaWrite {
			continue
		}
		for _, in := range s.Inputs() {
			if in.ID() == sinkInput {
				return nil, zero, fmt.Errorf("%w: collection feeds both the sink and another stage", ErrUnsupported)
			}
		}
	}

	app := apex.NewApplication("beam")
	names := stageNames(plan.Stages)

	// ops maps collection IDs to the operator producing them; sourceOut
	// records the raw source outputs (no coder boundary yet: Kafka
	// payloads to wrap, or Create values under the source coder).
	ops := make(map[int]string)
	sourceOut := make(map[int]entrySpec)
	streamN := 0
	addStream := func(from, to string) {
		app.AddStream(fmt.Sprintf("stream%d", streamN), from, to)
		streamN++
	}
	// entryFor resolves a stage's entry spec: wrap/decode a raw source
	// output, or decode the upstream operator boundary coder.
	entryFor := func(col beam.PCollection) (entrySpec, error) {
		if e, ok := sourceOut[col.ID()]; ok {
			return e, nil
		}
		if _, ok := ops[col.ID()]; !ok {
			return entrySpec{}, fmt.Errorf("apexrunner: stage consumes untranslated collection")
		}
		return entrySpec{decode: col.Coder()}, nil
	}

	for i, s := range plan.Stages {
		t := s.Transforms[0]
		switch s.Kind() {
		case beam.KindKafkaRead:
			rc, ok := t.Config.(beam.KafkaReadConfig)
			if !ok {
				return nil, zero, errors.New("apexrunner: malformed KafkaRead config")
			}
			app.AddInput(names[i], apex.KafkaInput(rc.Broker, rc.Topic, cfg.TargetRecords))
			ops[t.Output.ID()] = names[i]
			sourceOut[t.Output.ID()] = entrySpec{wrapKafka: true, kafkaTopic: rc.Topic}

		case beam.KindCreate:
			values, ok := t.Config.([]any)
			if !ok {
				return nil, zero, errors.New("apexrunner: malformed Create config")
			}
			encoded, err := encodeAll(values, s.Output().Coder())
			if err != nil {
				return nil, zero, fmt.Errorf("apexrunner: Create: %w", err)
			}
			app.AddInput(names[i], apex.SliceInput(encoded))
			ops[t.Output.ID()] = names[i]
			sourceOut[t.Output.ID()] = entrySpec{decode: s.Output().Coder()}

		case beam.KindParDo:
			entry, err := entryFor(s.Inputs()[0])
			if err != nil {
				return nil, zero, err
			}
			exit := exitSpec{encode: s.Output().Coder()}
			if s.Output().ID() == sinkInput {
				exit = exitSpec{toSink: true}
			}
			app.AddOperator(names[i], stageOp(names[i], s.Fn(), entry, exit, cfg.Costs))
			addStream(ops[s.Inputs()[0].ID()], names[i])
			ops[s.Output().ID()] = names[i]

		case beam.KindFlatten:
			// Flatten is the engine's merge: every input stream feeds one
			// forwarding operator port, and the runtime holds the
			// operator's output watermark at the minimum over all inputs.
			// Tuples pass through encoded, so a raw source output cannot
			// be flattened directly (its payloads carry no coder).
			if s.Output().ID() == sinkInput {
				return nil, zero, fmt.Errorf("%w: Flatten adjacent to sink", ErrUnsupported)
			}
			app.AddOperator(names[i], forwardOp(cfg.Costs))
			for _, in := range s.Inputs() {
				if _, raw := sourceOut[in.ID()]; raw {
					return nil, zero, fmt.Errorf("%w: Flatten directly from a source", ErrUnsupported)
				}
				if _, ok := ops[in.ID()]; !ok {
					return nil, zero, errors.New("apexrunner: Flatten consumes untranslated collection")
				}
				addStream(ops[in.ID()], names[i])
			}
			ops[s.Output().ID()] = names[i]

		case beam.KindWindowInto:
			ws, ok := t.Config.(beam.WindowingStrategy)
			if !ok {
				return nil, zero, errors.New("apexrunner: malformed WindowInto config")
			}
			if _, raw := sourceOut[s.Inputs()[0].ID()]; raw || s.Output().ID() == sinkInput {
				return nil, zero, fmt.Errorf("%w: WindowInto adjacent to source or sink", ErrUnsupported)
			}
			if _, ok := ops[s.Inputs()[0].ID()]; !ok {
				return nil, zero, errors.New("apexrunner: WindowInto consumes untranslated collection")
			}
			if ws.IsGlobal() {
				// Global re-windowing carries only strategy metadata
				// (consumed by the downstream GroupByKey); at runtime it
				// forwards the encoded records unchanged.
				app.AddOperator(names[i], forwardOp(cfg.Costs))
			} else {
				if ws.EventTime == nil {
					return nil, zero, fmt.Errorf("%w: non-global windowing (%s) without an event-time extractor",
						ErrUnsupported, ws.Fn.Name())
				}
				// Event-time windowing is where event time enters the
				// DAG: the transform becomes the engine's timestamp
				// assigner, stamping watermark control events the runtime
				// threads through every downstream operator
				// (min-over-senders) to the GroupByKey panes. Window
				// assignment itself stays in the strategy metadata the
				// GroupByKey consumes.
				coder := t.Inputs[0].Coder()
				app.AddOperator(names[i], apex.AssignTimestamps(func(tuple []byte) (time.Time, error) {
					elem, err := coder.Decode(tuple)
					if err != nil {
						return time.Time{}, fmt.Errorf("apexrunner: WindowInto decode: %w", err)
					}
					return ws.EventTime(elem)
				}, ws.Bound))
			}
			addStream(ops[s.Inputs()[0].ID()], names[i])
			ops[s.Output().ID()] = names[i]

		case beam.KindGroupByKey:
			kvCoder, ok := t.Inputs[0].Coder().(beam.KVCoder)
			if !ok {
				return nil, zero, fmt.Errorf("%w: GroupByKey over coder %s", ErrUnsupported, t.Inputs[0].Coder().Name())
			}
			if _, raw := sourceOut[s.Inputs()[0].ID()]; raw || s.Output().ID() == sinkInput {
				return nil, zero, fmt.Errorf("%w: GroupByKey adjacent to source or sink", ErrUnsupported)
			}
			if _, ok := ops[s.Inputs()[0].ID()]; !ok {
				return nil, zero, errors.New("apexrunner: GroupByKey consumes untranslated collection")
			}
			// The shared executable generates no watermark of its own:
			// panes fire off the control-event watermark the runtime
			// propagates from the upstream WindowInto assigner, combined
			// min-over-senders at every merge — sound at any parallelism
			// without a conservative fallback.
			gbkCfg := graphx.GBKConfig{
				Windowing: t.Inputs[0].Windowing(),
				Input:     kvCoder,
				Output:    t.Output.Coder(),
				Costs:     cfg.Costs,
				Trace:     cfg.Trace,
			}
			if _, err := graphx.NewGBKState(gbkCfg); err != nil {
				if errors.Is(err, beam.ErrUnsupported) {
					return nil, zero, fmt.Errorf("%w: %v", ErrUnsupported, err)
				}
				return nil, zero, fmt.Errorf("apexrunner: %w", err)
			}
			app.AddOperator(names[i], gbkOp(gbkCfg))
			// Keyed partitioning: the stream into the stateful operator
			// hashes the encoded KV key, so equal keys meet in one
			// partition.
			streamName := fmt.Sprintf("stream%d", streamN)
			addStream(ops[s.Inputs()[0].ID()], names[i])
			app.SetStreamKeyed(streamName, graphx.EncodedKVKey)
			ops[s.Output().ID()] = names[i]

		case beam.KindKafkaWrite:
			// Handled below: the sink is wired after its producer exists.

		default:
			return nil, zero, fmt.Errorf("%w: %v (%s)", ErrUnsupported, s.Kind(), s.Name())
		}
	}

	prev, ok := ops[sinkInput]
	if !ok {
		return nil, zero, errors.New("apexrunner: KafkaWrite consumes untranslated collection")
	}
	if e, raw := sourceOut[sinkInput]; raw {
		// Read straight into write: one forwarding stage preserves the
		// three-operator minimum shape.
		app.AddOperator(NameStage, stageOp(NameStage, nil, e, exitSpec{toSink: true}, cfg.Costs))
		addStream(prev, NameStage)
		prev = NameStage
	}

	// Sink: unbatched synchronous producer, fed by a per-tuple stream,
	// pinned to one partition (single-partition output topic).
	producerCfg := wc.Producer
	producerCfg.BatchSize = 1
	app.AddOutput(NameWrite, apex.KafkaOutput(wc.Broker, wc.Topic, producerCfg))
	app.AddStream("stageToWrite", prev, NameWrite)
	app.SetStreamPerTuple("stageToWrite", true)
	app.SetOperatorPartitions(NameWrite, 1)

	launch := apex.LaunchConfig{
		Parallelism: cfg.Parallelism,
		Costs:       cfg.Costs,
		Sim:         cfg.Sim,
		Metrics:     cfg.Metrics,
		Trace:       cfg.Trace,
	}
	return app, launch, nil
}

// stageNames assigns unique operator names: the Kafka read name for
// sources, the canonical fused-stage name for a fused chain, and the
// transform name (deduplicated) otherwise.
func stageNames(stages []*graphx.Stage) []string {
	names := make([]string, len(stages))
	seen := make(map[string]bool)
	for i, s := range stages {
		name := s.Name()
		switch {
		case s.Kind() == beam.KindKafkaRead || s.Kind() == beam.KindCreate:
			name = NameRead
		case s.Fused():
			name = NameStage
		case name == "":
			name = fmt.Sprintf("ParDo%d", i)
		}
		if seen[name] {
			name = fmt.Sprintf("%s#%d", name, i)
		}
		seen[name] = true
		names[i] = name
	}
	return names
}

// entrySpec describes how a stage turns an incoming tuple into an
// element: wrapping a raw broker payload into a KafkaRecord (the first
// stage after a Kafka source) or decoding with the boundary coder.
type entrySpec struct {
	kafkaTopic string
	wrapKafka  bool
	decode     beam.Coder
}

func sourceEntry(sourceIsKafka bool, topic string, createCoder beam.Coder) entrySpec {
	if sourceIsKafka {
		return entrySpec{wrapKafka: true, kafkaTopic: topic}
	}
	return entrySpec{decode: createCoder}
}

// exitSpec describes the stage exit: serializing the payload for the
// synchronous Kafka sink, or encoding for the next operator boundary.
type exitSpec struct {
	toSink bool
	encode beam.Coder
}

// stageOp builds one operator executing a ParDo stage (a single DoFn or
// a fused chain; nil forwards elements unchanged). Fused, elements
// travel between the chained DoFns as in-memory values (container-local
// locality) and only one bundle-dispatch charge applies per record;
// unfused, each operator boundary pays a coder round trip. The exit
// into the sink charges the per-record synchronous write bookkeeping.
func stageOp(name string, fn beam.DoFn, entry entrySpec, exit exitSpec, costs simcost.Costs) apex.GenericFactory {
	return apex.ProcessOp(func(ctx apex.OperatorContext) (func([]byte, func([]byte) error) error, error) {
		if fn != nil {
			if s, ok := fn.(beam.Setupper); ok {
				if err := s.Setup(); err != nil {
					return nil, fmt.Errorf("apexrunner: stage %q setup: %w", name, err)
				}
			}
		}
		bctx := beam.Context{Window: beam.GlobalWindow{}}

		// Compose the stage once per operator instance; tupleEmit is
		// rebound per incoming tuple.
		var tupleEmit func([]byte) error
		out := beam.Emitter(func(v any) error {
			if exit.toSink {
				payload, ok := v.([]byte)
				if !ok {
					return fmt.Errorf("apexrunner: KafkaWrite element %T is not []byte", v)
				}
				ctx.Charge(costs.CoderPerRecord)
				ctx.Charge(costs.ProducerSyncSend)
				return tupleEmit(payload)
			}
			wire, err := exit.encode.Encode(v)
			if err != nil {
				return fmt.Errorf("apexrunner: stage encode: %w", err)
			}
			ctx.Charge(costs.CoderPerRecord)
			return tupleEmit(wire)
		})
		chain := out
		if fn != nil {
			chain = func(v any) error {
				return fn.ProcessElement(bctx, v, out)
			}
		}

		return func(tuple []byte, emit func([]byte) error) error {
			// Stage entry: wrap or decode exactly once. Decoding pays
			// the boundary coder cost, like the other runners' per-
			// operator decode; wrapping a raw Kafka payload is free.
			var elem any
			if entry.wrapKafka {
				elem = beam.KafkaRecord{Topic: entry.kafkaTopic, Value: tuple}
			} else {
				decoded, err := entry.decode.Decode(tuple)
				if err != nil {
					return fmt.Errorf("apexrunner: stage decode: %w", err)
				}
				ctx.Charge(costs.CoderPerRecord)
				elem = decoded
			}
			ctx.Charge(costs.BeamDoFnPerRecord)
			tupleEmit = emit
			return chain(elem)
		}, nil
	})
}

// forwardOp forwards encoded records unchanged, charging only the
// bundle dispatch — the runtime shape of a metadata-only transform
// (WindowInto), matching the other runners' forwarding operators.
func forwardOp(costs simcost.Costs) apex.GenericFactory {
	return apex.ProcessOp(func(ctx apex.OperatorContext) (func([]byte, func([]byte) error) error, error) {
		return func(tuple []byte, emit func([]byte) error) error {
			ctx.Charge(costs.BeamDoFnPerRecord)
			return emit(tuple)
		}, nil
	})
}

// gbkOperator adapts the shared GroupByKey executable to the engine:
// tuples accumulate per (window, key), panes fire as the runtime
// delivers the combined min-over-senders watermark (WatermarkAware), and
// the remaining state drains at end of stream (StreamFlusher).
type gbkOperator struct {
	state *graphx.GBKState
}

func (o *gbkOperator) Process(t []byte, emit func([]byte) error) error {
	return o.state.Process(t, emit)
}

func (o *gbkOperator) OnWatermark(w time.Time, emit func([]byte) error) error {
	return o.state.AdvanceWatermark(w, emit)
}

func (o *gbkOperator) EndStream(emit func([]byte) error) error {
	return o.state.Flush(emit)
}

func (o *gbkOperator) Teardown() error { return nil }

// gbkOp builds the keyed stateful GroupByKey operator, one shared-state
// executable per partition.
func gbkOp(cfg graphx.GBKConfig) apex.GenericFactory {
	return func(ctx apex.OperatorContext) (apex.GenericOperator, error) {
		cfg := cfg
		cfg.Charge = ctx.Charge
		state, err := graphx.NewGBKState(cfg)
		if err != nil {
			return nil, fmt.Errorf("apexrunner: %w", err)
		}
		return &gbkOperator{state: state}, nil
	}
}

func encodeAll(values []any, coder beam.Coder) ([][]byte, error) {
	out := make([][]byte, len(values))
	for i, v := range values {
		b, err := coder.Encode(v)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}
