package apexrunner

import (
	"bytes"
	"errors"
	"testing"

	"beambench/internal/beam"
	"beambench/internal/broker"
	"beambench/internal/yarn"
)

func newCluster(t *testing.T) *yarn.Cluster {
	t.Helper()
	c, err := yarn.NewCluster(yarn.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func loadTopic(t *testing.T, b *broker.Broker, topic string, values []string) {
	t.Helper()
	if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if err := p.Send(topic, nil, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func topicStrings(t *testing.T, b *broker.Broker, topic string) []string {
	t.Helper()
	c, err := b.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignAll(topic); err != nil {
		t.Fatal(err)
	}
	var out []string
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		for _, r := range recs {
			out = append(out, string(r.Value))
		}
	}
}

func grepPipeline(b *broker.Broker) *beam.Pipeline {
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	grep := beam.Filter(p, "grep", func(v any) (bool, error) {
		return bytes.Contains(v.([]byte), []byte("test")), nil
	}, vals)
	beam.KafkaWrite(p, b, "out", grep, broker.ProducerConfig{})
	return p
}

func TestGrepEndToEnd(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", []string{"a test line", "nothing", "testy", "x"})
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(grepPipeline(b), Config{Cluster: newCluster(t)})
	if err != nil {
		t.Fatal(err)
	}
	got := topicStrings(t, b, "out")
	want := []string{"a test line", "testy"}
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
	// The translation fuses the ParDo chain: read + executable stage +
	// write = 3 operators plus the STRAM AM.
	if res.Containers != 4 {
		t.Errorf("Containers = %d, want 4 (AM + 3 operators)", res.Containers)
	}
}

func TestIdentityPreservesOrderAndCount(t *testing.T) {
	b := broker.New()
	values := make([]string, 500)
	for i := range values {
		values[i] = string(rune('a'+i%26)) + "-payload"
	}
	loadTopic(t, b, "in", values)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	beam.KafkaWrite(p, b, "out", vals, broker.ProducerConfig{})
	if _, err := Run(p, Config{Cluster: newCluster(t)}); err != nil {
		t.Fatal(err)
	}
	got := topicStrings(t, b, "out")
	if len(got) != len(values) {
		t.Fatalf("output = %d records, want %d", len(got), len(values))
	}
	for i := range values {
		if got[i] != values[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], values[i])
		}
	}
}

func TestParallelismTwo(t *testing.T) {
	b := broker.New()
	values := make([]string, 200)
	for i := range values {
		values[i] = "test line"
	}
	loadTopic(t, b, "in", values)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(grepPipeline(b), Config{Cluster: newCluster(t), Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := topicStrings(t, b, "out"); len(got) != 200 {
		t.Errorf("output = %d records, want 200", len(got))
	}
	// Read and stage get two partitions; the sink is pinned to one
	// because the output topic has a single partition.
	if res.Containers != 6 {
		t.Errorf("Containers = %d, want 6 (AM + 2 + 2 + 1)", res.Containers)
	}
}

func TestUnsupportedTransforms(t *testing.T) {
	p := beam.NewPipeline()
	col := beam.Create(p, []any{beam.KV{Key: "a", Value: "b"}})
	beam.GroupByKey(p, col)
	if _, err := Run(p, Config{Cluster: newCluster(t)}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("GBK = %v, want ErrUnsupported", err)
	}
}

func TestCreatePipeline(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p := beam.NewPipeline()
	col := beam.Create(p, []any{[]byte("one"), []byte("two")})
	beam.KafkaWrite(p, b, "out", col, broker.ProducerConfig{})
	if _, err := Run(p, Config{Cluster: newCluster(t)}); err != nil {
		t.Fatal(err)
	}
	if got := topicStrings(t, b, "out"); len(got) != 2 {
		t.Errorf("output = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", nil)
	if _, err := Run(grepPipeline(b), Config{}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := Run(grepPipeline(b), Config{Cluster: newCluster(t), Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
}
