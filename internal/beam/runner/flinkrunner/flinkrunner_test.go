package flinkrunner

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"

	"beambench/internal/beam"
	"beambench/internal/broker"
	"beambench/internal/flink"
)

func newCluster(t *testing.T) *flink.Cluster {
	t.Helper()
	c, err := flink.NewCluster(flink.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func loadTopic(t *testing.T, b *broker.Broker, topic string, values []string) {
	t.Helper()
	if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if err := p.Send(topic, nil, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func topicStrings(t *testing.T, b *broker.Broker, topic string) []string {
	t.Helper()
	c, err := b.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignAll(topic); err != nil {
		t.Fatal(err)
	}
	var out []string
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		for _, r := range recs {
			out = append(out, string(r.Value))
		}
	}
}

func grepPipeline(b *broker.Broker) *beam.Pipeline {
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	grep := beam.Filter(p, "grep", func(v any) (bool, error) {
		return bytes.Contains(v.([]byte), []byte("test")), nil
	}, vals)
	beam.KafkaWrite(p, b, "out", grep, broker.ProducerConfig{})
	return p
}

func TestGrepEndToEnd(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", []string{"a test line", "nothing", "testy", "x"})
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(grepPipeline(b), Config{Cluster: newCluster(t)})
	if err != nil {
		t.Fatal(err)
	}
	got := topicStrings(t, b, "out")
	want := []string{"a test line", "testy"}
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
	if res.Attempts != 1 {
		t.Errorf("attempts = %d, want 1", res.Attempts)
	}
}

func TestBeamPlanHasSevenNodesForGrep(t *testing.T) {
	// Reproduces Figure 13: source + read flat map + 3 RawParDos
	// (withoutMetadata, values, grep) + write-translation RawParDo +
	// sink = 7 plan nodes, versus 3 for the native job (Figure 12).
	b := broker.New()
	loadTopic(t, b, "in", nil)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	env, _, err := Translate(grepPipeline(b), Config{Cluster: newCluster(t)})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := env.ExecutionPlan()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Len() != 7 {
		t.Errorf("Beam grep plan has %d nodes, want 7 (paper Figure 13)", plan.Len())
	}
	text := plan.String()
	if !strings.Contains(text, NameRawSource) {
		t.Errorf("plan missing %q:\n%s", NameRawSource, text)
	}
	if !strings.Contains(text, NameReadFlatMap) {
		t.Errorf("plan missing %q:\n%s", NameReadFlatMap, text)
	}
	if got := strings.Count(text, NameRawParDo); got != 4 {
		t.Errorf("plan has %d RawParDo nodes, want 4:\n%s", got, text)
	}
}

func TestBeamJobRunsUnchained(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", []string{"test"})
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(grepPipeline(b), Config{Cluster: newCluster(t)})
	if err != nil {
		t.Fatal(err)
	}
	// Chaining disabled: every one of the 7 operators is its own task.
	if res.Tasks != 7 {
		t.Errorf("Tasks = %d, want 7 (runner disables chaining)", res.Tasks)
	}
}

func TestParallelismTwo(t *testing.T) {
	b := broker.New()
	values := make([]string, 200)
	for i := range values {
		values[i] = "test line"
	}
	loadTopic(t, b, "in", values)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(grepPipeline(b), Config{Cluster: newCluster(t), Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if got := topicStrings(t, b, "out"); len(got) != 200 {
		t.Errorf("output = %d records, want 200", len(got))
	}
}

func TestCreatePipeline(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p := beam.NewPipeline()
	col := beam.Create(p, []any{[]byte("one"), []byte("two")})
	upper := beam.MapElements(p, "upper", func(v any) (any, error) {
		return bytes.ToUpper(v.([]byte)), nil
	}, col)
	beam.KafkaWrite(p, b, "out", upper, broker.ProducerConfig{})
	if _, err := Run(p, Config{Cluster: newCluster(t)}); err != nil {
		t.Fatal(err)
	}
	got := topicStrings(t, b, "out")
	if len(got) != 2 || got[0] != "ONE" || got[1] != "TWO" {
		t.Errorf("output = %v", got)
	}
}

func TestFlattenMergesInputs(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p := beam.NewPipeline()
	a := beam.Create(p, []any{[]byte("a1"), []byte("a2")})
	c := beam.Create(p, []any{[]byte("b1")})
	beam.KafkaWrite(p, b, "out", beam.Flatten(p, a, c), broker.ProducerConfig{})
	if _, err := Run(p, Config{Cluster: newCluster(t)}); err != nil {
		t.Fatal(err)
	}
	got := topicStrings(t, b, "out")
	sort.Strings(got)
	if want := []string{"a1", "a2", "b1"}; !reflect.DeepEqual(got, want) {
		t.Errorf("flattened output = %v, want %v", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", nil)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(grepPipeline(b), Config{}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := Run(grepPipeline(b), Config{Cluster: newCluster(t), Parallelism: -2}); err == nil {
		t.Error("negative parallelism accepted")
	}
	if _, err := Run(beam.NewPipeline(), Config{Cluster: newCluster(t)}); err == nil {
		t.Error("empty pipeline accepted")
	}
}
