// Package flinkrunner translates Beam pipelines into jobs on the Flink
// engine simulator, reproducing the translation behaviour Hesse et al.
// observe in Figure 13 (ICDCS 2019): every Beam primitive becomes its
// own Flink operator, operator chaining is disabled, elements cross
// every operator boundary through a coder encode/decode pair, and the
// KafkaIO read expands into a raw source plus a flat-map step. A native
// three-operator grep job therefore becomes a seven-operator Beam job —
// the structural source of the measured slowdown.
//
// Forcing the shared fusion optimizer (beam.FusionOn) collapses the
// ParDo chain into a single ExecutableStage operator, removing the
// intermediate coder boundaries and making the closed gap measurable.
package flinkrunner

import (
	"context"
	"errors"
	"fmt"
	"time"

	"beambench/internal/beam"
	"beambench/internal/beam/graphx"
	"beambench/internal/flink"
	"beambench/internal/simcost"
	"beambench/internal/watermark"
)

// Name is the runner's registry name.
const Name = "flink"

func init() {
	beam.RegisterRunner(Name, Runner{})
}

// ErrUnsupported marks transforms this runner cannot translate. It
// wraps the shared beam.ErrUnsupported sentinel, so callers can match
// capability gaps without naming the runner.
var ErrUnsupported = fmt.Errorf("flinkrunner: %w", beam.ErrUnsupported)

// Plan-node names as they appear in the Beam-on-Flink execution plan
// (paper Figure 13).
const (
	// NameRawSource is the KafkaIO source's plan label.
	NameRawSource = "PTransformTranslation.UnknownRawPTransform"
	// NameReadFlatMap is the read-expansion flat map's plan label.
	NameReadFlatMap = "Flat Map"
	// NameRawParDo is the label of every translated ParDo.
	NameRawParDo = "ParDoTranslation.RawParDo"
	// NameExecutableStage labels a fused ParDo chain when the shared
	// fusion optimizer is forced on (beam.FusionOn).
	NameExecutableStage = "ExecutableStage"
)

// Config parameterizes a pipeline execution.
type Config struct {
	// Cluster is the target Flink cluster.
	Cluster *flink.Cluster
	// Parallelism is the job parallelism (the paper's -p flag).
	// Defaults to 1.
	Parallelism int
	// Fusion selects the translation mode. The Flink runner's default
	// is unfused — one engine operator per Beam primitive, the paper's
	// Figure 13 behaviour.
	Fusion beam.FusionMode
	// TargetRecords bounds every KafkaRead by the total record count the
	// topic will eventually hold (see beam.Options.TargetRecords); 0
	// snapshots the topic contents at source start.
	TargetRecords int64
}

// Runner implements beam.Runner: it builds a fresh Flink cluster from
// the options, translates, executes and tears the cluster down.
type Runner struct{}

// Run implements beam.Runner.
func (Runner) Run(ctx context.Context, p *beam.Pipeline, opts beam.Options) (beam.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cluster, err := flink.NewCluster(flink.ClusterConfig{Costs: opts.EffectiveCosts(), Sim: opts.Sim, Metrics: opts.Metrics, Trace: opts.Trace})
	if err != nil {
		return nil, err
	}
	cluster.Start()
	defer cluster.Stop()
	res, err := Run(p, Config{
		Cluster:       cluster,
		Parallelism:   opts.EffectiveParallelism(),
		Fusion:        opts.Fusion,
		TargetRecords: opts.TargetRecords,
	})
	if err != nil {
		return nil, err
	}
	return &result{job: res}, nil
}

// result adapts a flink.JobResult to beam.Result.
type result struct {
	job *flink.JobResult
}

func (r *result) Elements(beam.PCollection) []any { return nil }

func (r *result) OperatorCount() int { return len(r.job.Operators) }

func (r *result) Metrics() map[string]int64 {
	out := make(map[string]int64, len(r.job.Operators))
	for _, s := range r.job.Operators {
		out[s.Name] += s.RecordsOut
	}
	return out
}

// Run translates and executes the pipeline, blocking until completion.
func Run(p *beam.Pipeline, cfg Config) (*flink.JobResult, error) {
	env, jobName, err := Translate(p, cfg)
	if err != nil {
		return nil, err
	}
	return env.Execute(jobName)
}

// Translate builds the Flink job for a pipeline without executing it,
// so callers can also inspect the execution plan (Figure 13).
func Translate(p *beam.Pipeline, cfg Config) (*flink.Environment, string, error) {
	if cfg.Cluster == nil {
		return nil, "", errors.New("flinkrunner: nil cluster")
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.Parallelism < 0 {
		return nil, "", fmt.Errorf("flinkrunner: negative parallelism %d", cfg.Parallelism)
	}
	plan, err := graphx.Lower(p, graphx.Options{Fusion: cfg.Fusion.Enabled(false)})
	if err != nil {
		return nil, "", err
	}

	costs := cfg.Cluster.Costs()
	env := flink.NewEnvironment(cfg.Cluster).
		SetParallelism(cfg.Parallelism).
		DisableOperatorChaining() // the runner emits unchained per-stage operators

	streams := make(map[int]*flink.DataStream)
	jobName := "beam"
	for _, s := range plan.Stages {
		t := s.Transforms[0]
		switch s.Kind() {
		case beam.KindKafkaRead:
			rc, ok := t.Config.(beam.KafkaReadConfig)
			if !ok {
				return nil, "", fmt.Errorf("flinkrunner: malformed KafkaRead config")
			}
			// The read expands to a raw source plus a flat map
			// wrapping broker payloads into encoded KafkaRecords.
			src := env.AddSource(NameRawSource, flink.KafkaSource(rc.Broker, rc.Topic, cfg.TargetRecords))
			out := src.Process(NameReadFlatMap, readFlatMap(rc.Topic, t.Output.Coder(), costs))
			streams[t.Output.ID()] = out
			jobName = "beam-" + rc.Topic

		case beam.KindCreate:
			values, ok := t.Config.([]any)
			if !ok {
				return nil, "", fmt.Errorf("flinkrunner: malformed Create config")
			}
			encoded, err := encodeAll(values, t.Output.Coder())
			if err != nil {
				return nil, "", fmt.Errorf("flinkrunner: Create: %w", err)
			}
			streams[t.Output.ID()] = env.AddSource(NameRawSource, flink.SliceSource(encoded))

		case beam.KindParDo:
			in, ok := streams[s.Inputs()[0].ID()]
			if !ok {
				return nil, "", fmt.Errorf("flinkrunner: ParDo %q consumes untranslated collection", s.Name())
			}
			// A fused stage is one engine operator: a single decode on
			// entry, the whole DoFn chain in memory, a single encode on
			// exit — the coder boundaries between the fused ParDos are
			// gone, which is what fusion buys on Flink.
			name := NameRawParDo
			if s.Fused() {
				name = NameExecutableStage
			}
			streams[s.Output().ID()] = in.Process(name,
				parDoProcess(s.Fn(), s.Inputs()[0].Coder(), s.Output().Coder(), costs))

		case beam.KindKafkaWrite:
			wc, ok := t.Config.(beam.KafkaWriteConfig)
			if !ok {
				return nil, "", fmt.Errorf("flinkrunner: malformed KafkaWrite config")
			}
			in, ok := streams[t.Inputs[0].ID()]
			if !ok {
				return nil, "", fmt.Errorf("flinkrunner: KafkaWrite consumes untranslated collection")
			}
			// Write expands to a serializing ParDo plus the sink.
			serialized := in.Process(NameRawParDo, writeSerializer(t.Inputs[0].Coder(), costs))
			serialized.AddSink("KafkaIO.Write "+wc.Topic, flink.KafkaSink(wc.Broker, wc.Topic, wc.Producer))

		case beam.KindWindowInto:
			ws, ok := t.Config.(beam.WindowingStrategy)
			if !ok {
				return nil, "", fmt.Errorf("flinkrunner: malformed WindowInto config")
			}
			in, ok := streams[t.Inputs[0].ID()]
			if !ok {
				return nil, "", fmt.Errorf("flinkrunner: WindowInto consumes untranslated collection")
			}
			if ws.IsGlobal() {
				// Global re-windowing carries only strategy metadata; at
				// runtime it is a forwarding operator.
				streams[t.Output.ID()] = in.Process(NameRawParDo, forwardProcess(costs))
				break
			}
			if ws.EventTime == nil {
				// Coder boundaries erase flow timestamps, so non-global
				// windowing is translatable only when event time derives
				// from the element itself.
				return nil, "", fmt.Errorf("%w: non-global windowing (%s) without an event-time extractor",
					ErrUnsupported, ws.Fn.Name())
			}
			// Event-time windowing is where event time enters the
			// dataflow: the transform becomes the engine's timestamp
			// assigner, stamping watermark control events that the runtime
			// threads through every downstream operator (min-over-senders)
			// to the GroupByKey panes. Window assignment itself stays in
			// the strategy metadata the GroupByKey consumes.
			streams[t.Output.ID()] = in.AssignTimestamps(NameRawParDo,
				windowAssigner(ws, t.Inputs[0].Coder(), costs))

		case beam.KindFlatten:
			ins := make([]*flink.DataStream, len(t.Inputs))
			for i, col := range t.Inputs {
				in, ok := streams[col.ID()]
				if !ok {
					return nil, "", fmt.Errorf("flinkrunner: Flatten consumes untranslated collection")
				}
				ins[i] = in
			}
			// Flatten is the engine's union: a multi-input merge whose
			// output watermark the runtime holds at the minimum over all
			// inputs, so a lagging branch holds back downstream panes.
			streams[t.Output.ID()] = ins[0].Union("Flatten", ins[1:]...)

		case beam.KindGroupByKey:
			in, ok := streams[t.Inputs[0].ID()]
			if !ok {
				return nil, "", fmt.Errorf("flinkrunner: GroupByKey consumes untranslated collection")
			}
			kvCoder, ok := t.Inputs[0].Coder().(beam.KVCoder)
			if !ok {
				return nil, "", fmt.Errorf("%w: GroupByKey over coder %s", ErrUnsupported, t.Inputs[0].Coder().Name())
			}
			// Hash-partition by key so equal keys meet in one subtask
			// (Flink supports the stateful side of the capability
			// matrix), then run the shared GroupByKey executable with
			// end-of-input flush. Event-time windows fire tuple-at-a-time
			// as the subtask watermark advances; global windows fire on
			// the count trigger and at flush.
			// The shared executable generates no watermark of its own:
			// panes fire off the control-event watermark the runtime
			// propagates from the upstream WindowInto assigner, combined
			// min-over-senders at every merge — sound at any parallelism
			// without a conservative fallback.
			gbkCfg := graphx.GBKConfig{
				Windowing: t.Inputs[0].Windowing(),
				Input:     kvCoder,
				Output:    t.Output.Coder(),
				Costs:     costs,
				Trace:     cfg.Cluster.Trace(),
			}
			if _, err := graphx.NewGBKState(gbkCfg); err != nil {
				if errors.Is(err, beam.ErrUnsupported) {
					return nil, "", fmt.Errorf("%w: %v", ErrUnsupported, err)
				}
				return nil, "", fmt.Errorf("flinkrunner: %w", err)
			}
			keyed := in.KeyBy(graphx.EncodedKVKey)
			streams[t.Output.ID()] = keyed.ProcessWithWatermark("GroupByKey", gbkProcess(gbkCfg))

		default:
			return nil, "", fmt.Errorf("%w: %v (%s)", ErrUnsupported, s.Kind(), s.Name())
		}
	}
	return env, jobName, nil
}

// readFlatMap wraps raw broker payloads into KafkaRecord elements and
// encodes them for the first operator boundary.
func readFlatMap(topic string, coder beam.Coder, costs simcost.Costs) flink.ProcessFactory {
	return func(ctx flink.OperatorContext) (flink.ProcessFunc, error) {
		return func(rec []byte, out flink.Collector) error {
			ctx.Charge(costs.BeamDoFnPerRecord)
			elem := beam.KafkaRecord{Topic: topic, Value: rec}
			wire, err := coder.Encode(elem)
			if err != nil {
				return fmt.Errorf("flinkrunner: read encode: %w", err)
			}
			ctx.Charge(costs.CoderPerRecord)
			return out.Collect(wire)
		}, nil
	}
}

// parDoProcess invokes the DoFn between a decode and an encode, the
// per-boundary coder work the paper attributes the Flink overhead to.
func parDoProcess(fn beam.DoFn, inCoder, outCoder beam.Coder, costs simcost.Costs) flink.ProcessFactory {
	return func(ctx flink.OperatorContext) (flink.ProcessFunc, error) {
		if s, ok := fn.(beam.Setupper); ok {
			if err := s.Setup(); err != nil {
				return nil, fmt.Errorf("flinkrunner: DoFn setup: %w", err)
			}
		}
		return func(rec []byte, out flink.Collector) error {
			elem, err := inCoder.Decode(rec)
			if err != nil {
				return fmt.Errorf("flinkrunner: decode: %w", err)
			}
			ctx.Charge(costs.CoderPerRecord)
			ctx.Charge(costs.BeamDoFnPerRecord)
			bctx := beam.Context{Window: beam.GlobalWindow{}}
			// The emitter closure adapts the Beam SDK contract to the
			// engine collector: it is the SDK-harness hop whose cost the
			// benchmark quantifies.
			//beamvet:allow hotalloc the emitter adapter is the SDK-to-engine hop under measurement
			return fn.ProcessElement(bctx, elem, func(emitted any) error {
				wire, err := outCoder.Encode(emitted)
				if err != nil {
					return fmt.Errorf("flinkrunner: encode: %w", err)
				}
				ctx.Charge(costs.CoderPerRecord)
				return out.Collect(wire)
			})
		}, nil
	}
}

// writeSerializer decodes the final collection back to raw bytes for the
// Kafka sink (the write-expansion ParDo of Figure 13).
func writeSerializer(inCoder beam.Coder, costs simcost.Costs) flink.ProcessFactory {
	return func(ctx flink.OperatorContext) (flink.ProcessFunc, error) {
		return func(rec []byte, out flink.Collector) error {
			elem, err := inCoder.Decode(rec)
			if err != nil {
				return fmt.Errorf("flinkrunner: write decode: %w", err)
			}
			ctx.Charge(costs.CoderPerRecord)
			payload, ok := elem.([]byte)
			if !ok {
				return fmt.Errorf("flinkrunner: KafkaWrite element %T is not []byte", elem)
			}
			ctx.Charge(costs.BeamDoFnPerRecord)
			return out.Collect(payload)
		}, nil
	}
}

// forwardProcess forwards records unchanged; it carries the plan node
// for metadata-only transforms like global re-windowing.
func forwardProcess(costs simcost.Costs) flink.ProcessFactory {
	return func(ctx flink.OperatorContext) (flink.ProcessFunc, error) {
		return func(rec []byte, out flink.Collector) error {
			ctx.Charge(costs.BeamDoFnPerRecord)
			return out.Collect(rec)
		}, nil
	}
}

// windowAssigner builds the timestamp/watermark assigner a non-global
// WindowInto translates to: each record's element-derived event time
// feeds a per-subtask watermark generator with the strategy's bound, and
// every generator advance is emitted as a watermark control event behind
// the record it covers.
func windowAssigner(ws beam.WindowingStrategy, coder beam.Coder, costs simcost.Costs) flink.AssignerFactory {
	return func(ctx flink.OperatorContext, wm flink.WatermarkEmitter) (flink.ProcessFunc, error) {
		gen := watermark.NewGenerator(ws.Bound)
		return func(rec []byte, out flink.Collector) error {
			elem, err := coder.Decode(rec)
			if err != nil {
				return fmt.Errorf("flinkrunner: WindowInto decode: %w", err)
			}
			ctx.Charge(costs.CoderPerRecord)
			ctx.Charge(costs.BeamDoFnPerRecord)
			et, err := ws.EventTime(elem)
			if err != nil {
				return fmt.Errorf("flinkrunner: WindowInto event time: %w", err)
			}
			if err := out.Collect(rec); err != nil {
				return err
			}
			if gen.Observe(et) {
				return wm.EmitWatermark(gen.Current())
			}
			return nil
		}, nil
	}
}

// gbkProcess runs the shared GroupByKey executable (graphx.GBKState) as
// a keyed subtask under control-event watermarks: records accumulate,
// panes fire as the runtime delivers the min-over-senders watermark, and
// the remaining state drains at end of input.
func gbkProcess(cfg graphx.GBKConfig) flink.WatermarkedProcessFactory {
	return func(ctx flink.OperatorContext) (flink.ProcessFunc, flink.WatermarkFunc, flink.FlushFunc, error) {
		cfg := cfg
		cfg.Charge = ctx.Charge
		state, err := graphx.NewGBKState(cfg)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("flinkrunner: %w", err)
		}
		process := func(rec []byte, out flink.Collector) error {
			return state.Process(rec, out.Collect)
		}
		onWatermark := func(w time.Time, out flink.Collector) error {
			return state.AdvanceWatermark(w, out.Collect)
		}
		flush := func(out flink.Collector) error {
			return state.Flush(out.Collect)
		}
		return process, onWatermark, flush, nil
	}
}

func encodeAll(values []any, coder beam.Coder) ([][]byte, error) {
	out := make([][]byte, len(values))
	for i, v := range values {
		b, err := coder.Encode(v)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}
