package flinkrunner

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"beambench/internal/beam"
	"beambench/internal/beam/runner/direct"
	"beambench/internal/broker"
)

// countPipeline builds: read -> values -> toKV(word) -> window(trigger)
// -> GBK -> format -> write. Used to compare the Flink runner's stateful
// path against the direct runner.
func countPipeline(b *broker.Broker, trigger beam.Trigger) *beam.Pipeline {
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	kvs := beam.ParDo(p, "toKV", beam.DoFnFunc(func(ctx beam.Context, elem any, emit beam.Emitter) error {
		return emit(beam.KV{Key: elem.([]byte), Value: elem.([]byte)})
	}), vals, beam.WithCoder(beam.KVCoder{Key: beam.BytesCoder{}, Value: beam.BytesCoder{}}))
	windowed := beam.WindowInto(p, beam.DefaultWindowing().Triggering(trigger), kvs)
	grouped := beam.GroupByKey(p, windowed)
	formatted := beam.MapElements(p, "format", func(elem any) (any, error) {
		g, ok := elem.(beam.Grouped)
		if !ok {
			return nil, fmt.Errorf("element %T is not Grouped", elem)
		}
		key, err := beam.KeyString(g.Key)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%s:%d", key, len(g.Values))), nil
	}, grouped, beam.WithCoder(beam.BytesCoder{}))
	beam.KafkaWrite(p, b, "out", formatted, broker.ProducerConfig{})
	return p
}

// keyCounts sums the per-key pane counts of the formatted output.
func keyCounts(t *testing.T, b *broker.Broker) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for _, line := range topicStrings(t, b, "out") {
		var key string
		var n int
		if _, err := fmt.Sscanf(line, "%s", &key); err != nil {
			t.Fatalf("malformed output %q", line)
		}
		parts := strings.SplitN(line, ":", 2)
		if len(parts) != 2 {
			t.Fatalf("malformed output %q", line)
		}
		if _, err := fmt.Sscanf(parts[1], "%d", &n); err != nil {
			t.Fatalf("malformed output %q", line)
		}
		out[parts[0]] += n
	}
	return out
}

func wordWorkload() []string {
	words := []string{"alpha", "beta", "gamma", "delta"}
	var out []string
	for i := range 200 {
		out = append(out, words[i%len(words)])
		if i%3 == 0 {
			out = append(out, "alpha") // skew one key
		}
	}
	return out
}

func TestGroupByKeyMatchesDirectRunner(t *testing.T) {
	input := wordWorkload()

	// Direct runner reference.
	bDirect := broker.New()
	loadTopic(t, bDirect, "in", input)
	if err := bDirect.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := direct.Run(countPipeline(bDirect, beam.AfterCount{N: 7})); err != nil {
		t.Fatal(err)
	}
	want := keyCounts(t, bDirect)

	// Flink runner under test.
	bFlink := broker.New()
	loadTopic(t, bFlink, "in", input)
	if err := bFlink.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(countPipeline(bFlink, beam.AfterCount{N: 7}), Config{Cluster: newCluster(t)}); err != nil {
		t.Fatal(err)
	}
	got := keyCounts(t, bFlink)

	if len(got) != len(want) {
		t.Fatalf("key sets differ: got %v, want %v", got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("key %q count = %d, want %d", k, got[k], n)
		}
	}
}

func TestGroupByKeyParallelismTwoKeepsKeysTogether(t *testing.T) {
	input := wordWorkload()
	b := broker.New()
	loadTopic(t, b, "in", input)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	// A huge trigger count means panes only fire at end of input: each
	// key must then appear exactly once, proving all its values met in
	// one subtask despite parallelism 2.
	if _, err := Run(countPipeline(b, beam.AfterCount{N: 1 << 20}), Config{Cluster: newCluster(t), Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	lines := topicStrings(t, b, "out")
	seen := make(map[string]bool)
	total := 0
	for _, line := range lines {
		key := strings.SplitN(line, ":", 2)[0]
		if seen[key] {
			t.Errorf("key %q emitted from more than one pane/subtask", key)
		}
		seen[key] = true
		var n int
		if _, err := fmt.Sscanf(strings.SplitN(line, ":", 2)[1], "%d", &n); err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != len(input) {
		t.Errorf("grouped value total = %d, want %d", total, len(input))
	}
}

func TestGroupByKeyTriggerFiresPanes(t *testing.T) {
	b := broker.New()
	input := make([]string, 20)
	for i := range input {
		input[i] = "k"
	}
	loadTopic(t, b, "in", input)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(countPipeline(b, beam.AfterCount{N: 8}), Config{Cluster: newCluster(t)}); err != nil {
		t.Fatal(err)
	}
	lines := topicStrings(t, b, "out")
	// 20 values with AfterCount(8): panes of 8, 8, and a final 4.
	if len(lines) != 3 {
		t.Fatalf("panes = %v, want 3", lines)
	}
	counts := keyCounts(t, b)
	if counts["k"] != 20 {
		t.Errorf("total = %d, want 20", counts["k"])
	}
}

func TestNonGlobalWindowingUnsupported(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", nil)
	p := beam.NewPipeline()
	kvs := beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in"))
	windowed := beam.WindowInto(p, beam.WindowingStrategy{Fn: beam.FixedWindows{Size: time.Second}}, kvs)
	beam.GroupByKey(p, windowed)
	if _, err := Run(p, Config{Cluster: newCluster(t)}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("fixed windows = %v, want ErrUnsupported", err)
	}
}
