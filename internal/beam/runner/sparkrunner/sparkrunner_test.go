package sparkrunner

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"beambench/internal/beam"
	"beambench/internal/broker"
	"beambench/internal/spark"
)

func newCluster(t *testing.T) *spark.Cluster {
	t.Helper()
	c, err := spark.NewCluster(spark.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func loadTopic(t *testing.T, b *broker.Broker, topic string, values []string) {
	t.Helper()
	if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if err := p.Send(topic, nil, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func topicStrings(t *testing.T, b *broker.Broker, topic string) []string {
	t.Helper()
	c, err := b.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignAll(topic); err != nil {
		t.Fatal(err)
	}
	var out []string
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		for _, r := range recs {
			out = append(out, string(r.Value))
		}
	}
}

func grepPipeline(b *broker.Broker) *beam.Pipeline {
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	grep := beam.Filter(p, "grep", func(v any) (bool, error) {
		return bytes.Contains(v.([]byte), []byte("test")), nil
	}, vals)
	beam.KafkaWrite(p, b, "out", grep, broker.ProducerConfig{})
	return p
}

func TestGrepEndToEnd(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", []string{"a test line", "nothing", "testy", "x"})
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(grepPipeline(b), Config{Cluster: newCluster(t)})
	if err != nil {
		t.Fatal(err)
	}
	got := topicStrings(t, b, "out")
	want := []string{"a test line", "testy"}
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
	if res.Metrics.RecordsIn != 4 {
		t.Errorf("RecordsIn = %d, want 4", res.Metrics.RecordsIn)
	}
	if res.Metrics.RecordsOut != 2 {
		t.Errorf("RecordsOut = %d, want 2", res.Metrics.RecordsOut)
	}
}

func TestParallelismTwoRedistributes(t *testing.T) {
	b := broker.New()
	values := make([]string, 300)
	for i := range values {
		values[i] = "test line"
	}
	loadTopic(t, b, "in", values)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(grepPipeline(b), Config{Cluster: newCluster(t), Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if got := topicStrings(t, b, "out"); len(got) != 300 {
		t.Errorf("output = %d records, want 300", len(got))
	}
}

// countPipeline builds read -> toKV(word) -> window -> GBK -> format ->
// write, the stateful path the micro-batch state stage now supports.
func countPipeline(b *broker.Broker, trigger beam.Trigger) *beam.Pipeline {
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	kvs := beam.ParDo(p, "toKV", beam.DoFnFunc(func(ctx beam.Context, elem any, emit beam.Emitter) error {
		return emit(beam.KV{Key: elem.([]byte), Value: elem.([]byte)})
	}), vals, beam.WithCoder(beam.KVCoder{Key: beam.BytesCoder{}, Value: beam.BytesCoder{}}))
	windowed := beam.WindowInto(p, beam.DefaultWindowing().Triggering(trigger), kvs)
	grouped := beam.GroupByKey(p, windowed)
	formatted := beam.MapElements(p, "format", func(elem any) (any, error) {
		g, ok := elem.(beam.Grouped)
		if !ok {
			return nil, fmt.Errorf("element %T is not Grouped", elem)
		}
		key, err := beam.KeyString(g.Key)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%s:%d", key, len(g.Values))), nil
	}, grouped, beam.WithCoder(beam.BytesCoder{}))
	beam.KafkaWrite(p, b, "out", formatted, broker.ProducerConfig{})
	return p
}

// TestGroupByKeySupported pins the lifted capability-matrix entry: the
// Spark runner executes GroupByKey through the keyed micro-batch state
// path, and at parallelism 2 the keyed shuffle keeps every key's
// records in one stateful partition.
func TestGroupByKeySupported(t *testing.T) {
	words := []string{"alpha", "beta", "gamma"}
	var input []string
	for i := range 120 {
		input = append(input, words[i%len(words)])
	}
	for _, parallelism := range []int{1, 2} {
		b := broker.New()
		loadTopic(t, b, "in", input)
		if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
			t.Fatal(err)
		}
		// A huge trigger count means panes fire only at end of input:
		// each key must appear exactly once with its full count.
		if _, err := Run(countPipeline(b, beam.AfterCount{N: 1 << 20}), Config{Cluster: newCluster(t), Parallelism: parallelism}); err != nil {
			t.Fatalf("parallelism %d: %v", parallelism, err)
		}
		lines := topicStrings(t, b, "out")
		counts := make(map[string]int)
		for _, line := range lines {
			counts[line]++
		}
		if len(lines) != len(words) {
			t.Fatalf("parallelism %d: %d panes, want %d: %v", parallelism, len(lines), len(words), lines)
		}
		for _, w := range words {
			if counts[w+":40"] != 1 {
				t.Errorf("parallelism %d: pane %s:40 seen %d times", parallelism, w, counts[w+":40"])
			}
		}
	}
}

func TestNonGlobalWindowingWithoutEventTimeRejected(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", nil)
	p := beam.NewPipeline()
	kvs := beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in"))
	windowed := beam.WindowInto(p, beam.WindowingStrategy{Fn: beam.FixedWindows{Size: time.Second}}, kvs)
	beam.GroupByKey(p, windowed)
	_, err := Run(p, Config{Cluster: newCluster(t)})
	if !errors.Is(err, ErrUnsupported) || !errors.Is(err, beam.ErrUnsupported) {
		t.Errorf("non-global windowing without event time = %v, want ErrUnsupported wrapping beam.ErrUnsupported", err)
	}
}

func TestCreatePipeline(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p := beam.NewPipeline()
	col := beam.Create(p, []any{[]byte("one"), []byte("two")})
	beam.KafkaWrite(p, b, "out", col, broker.ProducerConfig{})
	if _, err := Run(p, Config{Cluster: newCluster(t)}); err != nil {
		t.Fatal(err)
	}
	if got := topicStrings(t, b, "out"); len(got) != 2 {
		t.Errorf("output = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", nil)
	if _, err := Run(grepPipeline(b), Config{}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := Run(grepPipeline(b), Config{Cluster: newCluster(t), Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
}

// setupFailFn fails its Setup hook; the runner must surface the error
// instead of processing records through an un-initialized DoFn.
type setupFailFn struct{ err error }

func (f *setupFailFn) ProcessElement(ctx beam.Context, elem any, emit beam.Emitter) error {
	return emit(elem)
}
func (f *setupFailFn) Setup() error { return f.err }

func TestSetupErrorFailsTheRun(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", []string{"a", "b"})
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	bad := beam.ParDo(p, "bad", &setupFailFn{err: boom}, vals)
	beam.KafkaWrite(p, b, "out", bad, broker.ProducerConfig{})

	_, err := Run(p, Config{Cluster: newCluster(t)})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want the Setup failure", err)
	}
}
