package sparkrunner

import (
	"bytes"
	"errors"
	"testing"

	"beambench/internal/beam"
	"beambench/internal/broker"
	"beambench/internal/spark"
)

func newCluster(t *testing.T) *spark.Cluster {
	t.Helper()
	c, err := spark.NewCluster(spark.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func loadTopic(t *testing.T, b *broker.Broker, topic string, values []string) {
	t.Helper()
	if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if err := p.Send(topic, nil, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func topicStrings(t *testing.T, b *broker.Broker, topic string) []string {
	t.Helper()
	c, err := b.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignAll(topic); err != nil {
		t.Fatal(err)
	}
	var out []string
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		for _, r := range recs {
			out = append(out, string(r.Value))
		}
	}
}

func grepPipeline(b *broker.Broker) *beam.Pipeline {
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	grep := beam.Filter(p, "grep", func(v any) (bool, error) {
		return bytes.Contains(v.([]byte), []byte("test")), nil
	}, vals)
	beam.KafkaWrite(p, b, "out", grep, broker.ProducerConfig{})
	return p
}

func TestGrepEndToEnd(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", []string{"a test line", "nothing", "testy", "x"})
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := Run(grepPipeline(b), Config{Cluster: newCluster(t)})
	if err != nil {
		t.Fatal(err)
	}
	got := topicStrings(t, b, "out")
	want := []string{"a test line", "testy"}
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
	if res.Metrics.RecordsIn != 4 {
		t.Errorf("RecordsIn = %d, want 4", res.Metrics.RecordsIn)
	}
	if res.Metrics.RecordsOut != 2 {
		t.Errorf("RecordsOut = %d, want 2", res.Metrics.RecordsOut)
	}
}

func TestParallelismTwoRedistributes(t *testing.T) {
	b := broker.New()
	values := make([]string, 300)
	for i := range values {
		values[i] = "test line"
	}
	loadTopic(t, b, "in", values)
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(grepPipeline(b), Config{Cluster: newCluster(t), Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	if got := topicStrings(t, b, "out"); len(got) != 300 {
		t.Errorf("output = %d records, want 300", len(got))
	}
}

func TestGroupByKeyRejected(t *testing.T) {
	// The Beam capability matrix: no stateful processing on the Spark
	// runner — the reason the paper benchmarks only stateless queries.
	b := broker.New()
	loadTopic(t, b, "in", nil)
	p := beam.NewPipeline()
	kvs := beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in"))
	windowed := beam.WindowInto(p, beam.DefaultWindowing().Triggering(beam.AfterCount{N: 5}), kvs)
	beam.GroupByKey(p, windowed)
	_, err := Run(p, Config{Cluster: newCluster(t)})
	if !errors.Is(err, ErrStatefulUnsupported) && !errors.Is(err, ErrUnsupported) {
		t.Errorf("GBK on spark = %v, want stateful-unsupported", err)
	}
}

func TestCreatePipeline(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p := beam.NewPipeline()
	col := beam.Create(p, []any{[]byte("one"), []byte("two")})
	beam.KafkaWrite(p, b, "out", col, broker.ProducerConfig{})
	if _, err := Run(p, Config{Cluster: newCluster(t)}); err != nil {
		t.Fatal(err)
	}
	if got := topicStrings(t, b, "out"); len(got) != 2 {
		t.Errorf("output = %v", got)
	}
}

func TestConfigValidation(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", nil)
	if _, err := Run(grepPipeline(b), Config{}); err == nil {
		t.Error("nil cluster accepted")
	}
	if _, err := Run(grepPipeline(b), Config{Cluster: newCluster(t), Parallelism: -1}); err == nil {
		t.Error("negative parallelism accepted")
	}
}

// setupFailFn fails its Setup hook; the runner must surface the error
// instead of processing records through an un-initialized DoFn.
type setupFailFn struct{ err error }

func (f *setupFailFn) ProcessElement(ctx beam.Context, elem any, emit beam.Emitter) error {
	return emit(elem)
}
func (f *setupFailFn) Setup() error { return f.err }

func TestSetupErrorFailsTheRun(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", []string{"a", "b"})
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	bad := beam.ParDo(p, "bad", &setupFailFn{err: boom}, vals)
	beam.KafkaWrite(p, b, "out", bad, broker.ProducerConfig{})

	_, err := Run(p, Config{Cluster: newCluster(t)})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want the Setup failure", err)
	}
}
