// Package sparkrunner translates Beam pipelines into micro-batch
// applications on the Spark Streaming simulator. Its behaviour mirrors
// the runner characteristics the paper measures:
//
//   - every ParDo becomes its own per-element stage inside each batch,
//     paying DoFn dispatch and coder encode/decode per record (paper
//     Figure 11: 3-7x slowdown on Spark);
//   - with parallelism above one the runner inserts a redistribution
//     shuffle sized by spark.default.parallelism, which is why the paper
//     observes Beam-on-Spark running ~70-85% slower at parallelism 2 for
//     cheap queries (Figures 6 and 9);
//   - stateful transforms (GroupByKey) are rejected, matching the Beam
//     capability matrix entry that made the paper exclude stateful
//     queries on Spark (Section III-B).
package sparkrunner

import (
	"errors"
	"fmt"

	"beambench/internal/beam"
	"beambench/internal/simcost"
	"beambench/internal/spark"
)

// Errors reported by the translation.
var (
	// ErrUnsupported marks transforms this runner cannot translate.
	ErrUnsupported = errors.New("sparkrunner: unsupported transform")
	// ErrStatefulUnsupported mirrors the Beam capability matrix: the
	// Spark runner does not support stateful processing.
	ErrStatefulUnsupported = errors.New("sparkrunner: stateful processing (GroupByKey) not supported on Spark Streaming")
)

// Config parameterizes a pipeline execution.
type Config struct {
	// Cluster is the target Spark cluster.
	Cluster *spark.Cluster
	// Parallelism is spark.default.parallelism (the paper's knob).
	// Defaults to 1.
	Parallelism int
	// MaxRatePerPartition caps batch sizes; 0 keeps the engine default.
	MaxRatePerPartition int
}

// Result is the execution summary.
type Result struct {
	Metrics spark.StreamingMetrics
}

// Run translates and executes the pipeline, blocking until the bounded
// input drains.
func Run(p *beam.Pipeline, cfg Config) (*Result, error) {
	ssc, err := Translate(p, cfg)
	if err != nil {
		return nil, err
	}
	metrics, err := ssc.RunBounded()
	if err != nil {
		return nil, err
	}
	return &Result{Metrics: metrics}, nil
}

// Translate builds the streaming application without running it.
func Translate(p *beam.Pipeline, cfg Config) (*spark.StreamingContext, error) {
	if cfg.Cluster == nil {
		return nil, errors.New("sparkrunner: nil cluster")
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.Parallelism < 0 {
		return nil, fmt.Errorf("sparkrunner: negative parallelism %d", cfg.Parallelism)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ssc, err := spark.NewStreamingContext(cfg.Cluster, spark.Config{
		DefaultParallelism:  cfg.Parallelism,
		MaxRatePerPartition: cfg.MaxRatePerPartition,
	})
	if err != nil {
		return nil, err
	}
	costs := cfg.Cluster.Costs()

	streams := make(map[int]*spark.DStream)
	for _, t := range p.Transforms() {
		switch t.Kind {
		case beam.KindKafkaRead:
			rc, ok := t.Config.(beam.KafkaReadConfig)
			if !ok {
				return nil, errors.New("sparkrunner: malformed KafkaRead config")
			}
			ds := ssc.KafkaDirectStream(rc.Broker, rc.Topic).
				Transform(readAdapter(rc.Topic, t.Output.Coder(), costs))
			// The runner redistributes to spark.default.parallelism —
			// the splitting overhead the paper observes at P2.
			if cfg.Parallelism > 1 {
				ds = ds.RepartitionDefault()
			}
			streams[t.Output.ID()] = ds

		case beam.KindCreate:
			values, ok := t.Config.([]any)
			if !ok {
				return nil, errors.New("sparkrunner: malformed Create config")
			}
			encoded, err := encodeAll(values, t.Output.Coder())
			if err != nil {
				return nil, fmt.Errorf("sparkrunner: Create: %w", err)
			}
			streams[t.Output.ID()] = ssc.SliceStream(encoded, 0)

		case beam.KindParDo:
			in, ok := streams[t.Inputs[0].ID()]
			if !ok {
				return nil, fmt.Errorf("sparkrunner: ParDo %q consumes untranslated collection", t.Name)
			}
			streams[t.Output.ID()] = in.Transform(
				parDoStage(t.Fn, t.Inputs[0].Coder(), t.Output.Coder(), costs))

		case beam.KindKafkaWrite:
			wc, ok := t.Config.(beam.KafkaWriteConfig)
			if !ok {
				return nil, errors.New("sparkrunner: malformed KafkaWrite config")
			}
			in, ok := streams[t.Inputs[0].ID()]
			if !ok {
				return nil, errors.New("sparkrunner: KafkaWrite consumes untranslated collection")
			}
			in.Transform(writeSerializer(t.Inputs[0].Coder(), costs)).
				SaveToKafka("KafkaIO.Write "+wc.Topic, wc.Broker, wc.Topic, wc.Producer)

		case beam.KindWindowInto:
			ws, ok := t.Config.(beam.WindowingStrategy)
			if !ok {
				return nil, errors.New("sparkrunner: malformed WindowInto config")
			}
			if !ws.IsGlobal() {
				return nil, fmt.Errorf("%w: non-global windowing (%s)", ErrUnsupported, ws.Fn.Name())
			}
			in, ok := streams[t.Inputs[0].ID()]
			if !ok {
				return nil, errors.New("sparkrunner: WindowInto consumes untranslated collection")
			}
			// Global re-windowing only carries strategy metadata; at
			// runtime it forwards records.
			streams[t.Output.ID()] = in.Transform(func(task spark.TaskContext) func([]byte, func([]byte)) {
				return func(rec []byte, emit func([]byte)) {
					task.Charge(costs.BeamDoFnPerRecord)
					emit(rec)
				}
			})

		case beam.KindGroupByKey:
			return nil, ErrStatefulUnsupported

		default:
			return nil, fmt.Errorf("%w: %v (%s)", ErrUnsupported, t.Kind, t.Name)
		}
	}
	return ssc, nil
}

// readAdapter wraps raw payloads into encoded KafkaRecord elements.
func readAdapter(topic string, coder beam.Coder, costs simcost.Costs) func(spark.TaskContext) func([]byte, func([]byte)) {
	return func(task spark.TaskContext) func([]byte, func([]byte)) {
		return func(rec []byte, emit func([]byte)) {
			task.Charge(costs.BeamDoFnPerRecord)
			wire, err := coder.Encode(beam.KafkaRecord{Topic: topic, Value: rec})
			if err != nil {
				return // malformed records are dropped, like a failed coder in a bundle retry
			}
			task.Charge(costs.CoderPerRecord)
			emit(wire)
		}
	}
}

// parDoStage invokes the DoFn per element inside each micro-batch task.
func parDoStage(fn beam.DoFn, inCoder, outCoder beam.Coder, costs simcost.Costs) func(spark.TaskContext) func([]byte, func([]byte)) {
	return func(task spark.TaskContext) func([]byte, func([]byte)) {
		if s, ok := fn.(beam.Setupper); ok {
			_ = s.Setup()
		}
		return func(rec []byte, emit func([]byte)) {
			elem, err := inCoder.Decode(rec)
			if err != nil {
				return
			}
			task.Charge(costs.CoderPerRecord)
			task.Charge(costs.BeamDoFnPerRecord)
			bctx := beam.Context{Window: beam.GlobalWindow{}}
			_ = fn.ProcessElement(bctx, elem, func(emitted any) error {
				wire, err := outCoder.Encode(emitted)
				if err != nil {
					return err
				}
				task.Charge(costs.CoderPerRecord)
				emit(wire)
				return nil
			})
		}
	}
}

// writeSerializer decodes final elements back to raw bytes for the sink.
func writeSerializer(inCoder beam.Coder, costs simcost.Costs) func(spark.TaskContext) func([]byte, func([]byte)) {
	return func(task spark.TaskContext) func([]byte, func([]byte)) {
		return func(rec []byte, emit func([]byte)) {
			elem, err := inCoder.Decode(rec)
			if err != nil {
				return
			}
			task.Charge(costs.CoderPerRecord)
			if payload, ok := elem.([]byte); ok {
				task.Charge(costs.BeamDoFnPerRecord)
				emit(payload)
			}
		}
	}
}

func encodeAll(values []any, coder beam.Coder) ([][]byte, error) {
	out := make([][]byte, len(values))
	for i, v := range values {
		b, err := coder.Encode(v)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}
