// Package sparkrunner translates Beam pipelines into micro-batch
// applications on the Spark Streaming simulator. Its behaviour mirrors
// the runner characteristics the paper measures:
//
//   - every ParDo becomes its own per-element stage inside each batch,
//     paying DoFn dispatch and coder encode/decode per record (paper
//     Figure 11: 3-7x slowdown on Spark);
//   - with parallelism above one the runner inserts a redistribution
//     shuffle sized by spark.default.parallelism, which is why the paper
//     observes Beam-on-Spark running ~70-85% slower at parallelism 2 for
//     cheap queries (Figures 6 and 9);
//   - GroupByKey translates to the engine's keyed micro-batch state path
//     (a keyed shuffle reuniting each key's records, then a persistent
//     stateful stage running the shared graphx.GBKState executable with
//     watermark-driven pane firing at batch boundaries). The paper-era
//     capability-matrix rejection — ErrStatefulUnsupported — is lifted;
//     what remains unsupported is non-global windowing without an
//     element-derived event-time extractor, which no runner can
//     translate deterministically;
//   - forcing the shared fusion optimizer (beam.FusionOn) collapses the
//     ParDo chain into one per-batch stage, removing the intermediate
//     coder round trips.
package sparkrunner

import (
	"context"
	"errors"
	"fmt"
	"time"

	"beambench/internal/beam"
	"beambench/internal/beam/graphx"
	"beambench/internal/simcost"
	"beambench/internal/spark"
)

// Name is the runner's registry name.
const Name = "spark"

func init() {
	beam.RegisterRunner(Name, Runner{})
}

// ErrUnsupported marks transforms this runner cannot translate. It
// wraps the shared beam.ErrUnsupported sentinel, so callers can match
// capability gaps without naming the runner.
var ErrUnsupported = fmt.Errorf("sparkrunner: %w", beam.ErrUnsupported)

// Config parameterizes a pipeline execution.
type Config struct {
	// Cluster is the target Spark cluster.
	Cluster *spark.Cluster
	// Parallelism is spark.default.parallelism (the paper's knob).
	// Defaults to 1.
	Parallelism int
	// MaxRatePerPartition caps batch sizes; 0 keeps the engine default.
	MaxRatePerPartition int
	// Fusion selects the translation mode. The Spark runner's default
	// is unfused — one per-element stage per Beam primitive inside each
	// micro-batch, the behaviour behind the paper's 3-7x slowdowns.
	Fusion beam.FusionMode
	// TargetRecords bounds every KafkaRead by the total record count the
	// topic will eventually hold (see beam.Options.TargetRecords); 0
	// snapshots the topic contents at the first batch.
	TargetRecords int64
}

// Result is the execution summary.
type Result struct {
	Metrics spark.StreamingMetrics

	operators int
}

// Runner implements beam.Runner: it builds a fresh Spark cluster from
// the options, translates, runs bounded and tears the cluster down.
type Runner struct{}

// Run implements beam.Runner.
func (Runner) Run(ctx context.Context, p *beam.Pipeline, opts beam.Options) (beam.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cluster, err := spark.NewCluster(spark.ClusterConfig{Costs: opts.EffectiveCosts(), Sim: opts.Sim, Metrics: opts.Metrics, Trace: opts.Trace})
	if err != nil {
		return nil, err
	}
	cluster.Start()
	defer cluster.Stop()
	res, err := Run(p, Config{
		Cluster:             cluster,
		Parallelism:         opts.EffectiveParallelism(),
		MaxRatePerPartition: opts.MaxRatePerPartition,
		Fusion:              opts.Fusion,
		TargetRecords:       opts.TargetRecords,
	})
	if err != nil {
		return nil, err
	}
	return registryResult{res: res}, nil
}

// OperatorCount reports the engine operators (stream stages and output
// operations) the translation registered.
func (r *Result) OperatorCount() int { return r.operators }

// registryResult adapts Result to beam.Result (whose Metrics method
// would clash with the exported Metrics field).
type registryResult struct{ res *Result }

func (r registryResult) Elements(beam.PCollection) []any { return nil }

func (r registryResult) OperatorCount() int { return r.res.operators }

func (r registryResult) Metrics() map[string]int64 {
	return map[string]int64{
		"Batches":    r.res.Metrics.Batches,
		"RecordsIn":  r.res.Metrics.RecordsIn,
		"RecordsOut": r.res.Metrics.RecordsOut,
	}
}

// Run translates and executes the pipeline, blocking until the bounded
// input drains.
func Run(p *beam.Pipeline, cfg Config) (*Result, error) {
	ssc, opCount, err := translate(p, cfg)
	if err != nil {
		return nil, err
	}
	metrics, err := ssc.RunBounded()
	if err != nil {
		return nil, err
	}
	return &Result{Metrics: metrics, operators: opCount}, nil
}

// Translate builds the streaming application without running it.
func Translate(p *beam.Pipeline, cfg Config) (*spark.StreamingContext, error) {
	ssc, _, err := translate(p, cfg)
	return ssc, err
}

// translate builds the application and reports how many engine
// operators (DStream stages plus output operations) it registered.
func translate(p *beam.Pipeline, cfg Config) (*spark.StreamingContext, int, error) {
	if cfg.Cluster == nil {
		return nil, 0, errors.New("sparkrunner: nil cluster")
	}
	if cfg.Parallelism == 0 {
		cfg.Parallelism = 1
	}
	if cfg.Parallelism < 0 {
		return nil, 0, fmt.Errorf("sparkrunner: negative parallelism %d", cfg.Parallelism)
	}
	plan, err := graphx.Lower(p, graphx.Options{Fusion: cfg.Fusion.Enabled(false)})
	if err != nil {
		return nil, 0, err
	}
	ssc, err := spark.NewStreamingContext(cfg.Cluster, spark.Config{
		DefaultParallelism:  cfg.Parallelism,
		MaxRatePerPartition: cfg.MaxRatePerPartition,
	})
	if err != nil {
		return nil, 0, err
	}
	costs := cfg.Cluster.Costs()

	streams := make(map[int]*spark.DStream)
	// multiPart tracks which translated streams can hold more than one
	// RDD partition per batch (a multi-partition topic, a default
	// redistribution, or a union laying branch partitions side by side).
	// A GroupByKey consuming such a stream needs a keyed shuffle even at
	// parallelism 1, or a key's records never meet in one partition.
	multiPart := make(map[int]bool)
	opCount := 0
	for _, s := range plan.Stages {
		t := s.Transforms[0]
		switch s.Kind() {
		case beam.KindKafkaRead:
			rc, ok := t.Config.(beam.KafkaReadConfig)
			if !ok {
				return nil, 0, errors.New("sparkrunner: malformed KafkaRead config")
			}
			ds := ssc.KafkaDirectStream(rc.Broker, rc.Topic, cfg.TargetRecords).
				Transform(readAdapter(rc.Topic, t.Output.Coder(), costs)).
				Named("KafkaIO.Read " + rc.Topic)
			opCount += 2 // direct stream + read adapter
			// The runner redistributes to spark.default.parallelism —
			// the splitting overhead the paper observes at P2.
			if cfg.Parallelism > 1 {
				ds = ds.RepartitionDefault()
				opCount++
			}
			streams[t.Output.ID()] = ds
			nParts, err := rc.Broker.Partitions(rc.Topic)
			if err != nil {
				return nil, 0, fmt.Errorf("sparkrunner: KafkaRead: %w", err)
			}
			multiPart[t.Output.ID()] = nParts > 1 || cfg.Parallelism > 1

		case beam.KindCreate:
			values, ok := t.Config.([]any)
			if !ok {
				return nil, 0, errors.New("sparkrunner: malformed Create config")
			}
			encoded, err := encodeAll(values, t.Output.Coder())
			if err != nil {
				return nil, 0, fmt.Errorf("sparkrunner: Create: %w", err)
			}
			streams[t.Output.ID()] = ssc.SliceStream(encoded, 0)
			opCount++

		case beam.KindParDo:
			in, ok := streams[s.Inputs()[0].ID()]
			if !ok {
				return nil, 0, fmt.Errorf("sparkrunner: ParDo %q consumes untranslated collection", s.Name())
			}
			// A fused stage runs its whole DoFn chain inside one
			// per-batch stage: one decode, in-memory hops, one encode.
			streams[s.Output().ID()] = in.TransformE(
				parDoStage(s.Name(), s.Fn(), s.Inputs()[0].Coder(), s.Output().Coder(), costs)).
				Named(s.Name())
			multiPart[s.Output().ID()] = multiPart[s.Inputs()[0].ID()]
			opCount++

		case beam.KindKafkaWrite:
			wc, ok := t.Config.(beam.KafkaWriteConfig)
			if !ok {
				return nil, 0, errors.New("sparkrunner: malformed KafkaWrite config")
			}
			in, ok := streams[t.Inputs[0].ID()]
			if !ok {
				return nil, 0, errors.New("sparkrunner: KafkaWrite consumes untranslated collection")
			}
			in.Transform(writeSerializer(t.Inputs[0].Coder(), costs)).
				Named("KafkaIO.Write "+wc.Topic+" serializer").
				SaveToKafka("KafkaIO.Write "+wc.Topic, wc.Broker, wc.Topic, wc.Producer)
			opCount += 2 // write serializer + sink

		case beam.KindWindowInto:
			ws, ok := t.Config.(beam.WindowingStrategy)
			if !ok {
				return nil, 0, errors.New("sparkrunner: malformed WindowInto config")
			}
			in, ok := streams[t.Inputs[0].ID()]
			if !ok {
				return nil, 0, errors.New("sparkrunner: WindowInto consumes untranslated collection")
			}
			if ws.IsGlobal() {
				// Global re-windowing only carries strategy metadata
				// (consumed by the downstream GroupByKey); at runtime it
				// forwards records.
				streams[t.Output.ID()] = in.Transform(func(task spark.TaskContext) func([]byte, func([]byte)) {
					return func(rec []byte, emit func([]byte)) {
						task.Charge(costs.BeamDoFnPerRecord)
						emit(rec)
					}
				}).Named(s.Name())
				multiPart[t.Output.ID()] = multiPart[t.Inputs[0].ID()]
				opCount++
				break
			}
			if ws.EventTime == nil {
				return nil, 0, fmt.Errorf("%w: non-global windowing (%s) without an event-time extractor",
					ErrUnsupported, ws.Fn.Name())
			}
			// Event-time windowing becomes the lineage's timestamp
			// assigner: per-partition watermark generators observe the
			// element-derived event times, and the scheduler delivers
			// their minimum to downstream stateful stages at every batch
			// boundary (TaskContext.Watermark). Window assignment itself
			// stays in the strategy metadata the GroupByKey consumes.
			coder := t.Inputs[0].Coder()
			streams[t.Output.ID()] = in.AssignTimestampsBounded(func(rec []byte) (time.Time, error) {
				elem, err := coder.Decode(rec)
				if err != nil {
					return time.Time{}, fmt.Errorf("sparkrunner: WindowInto decode: %w", err)
				}
				return ws.EventTime(elem)
			}, ws.Bound).Named(s.Name())
			multiPart[t.Output.ID()] = multiPart[t.Inputs[0].ID()]
			opCount++

		case beam.KindFlatten:
			ins := make([]*spark.DStream, len(t.Inputs))
			for i, col := range t.Inputs {
				in, ok := streams[col.ID()]
				if !ok {
					return nil, 0, errors.New("sparkrunner: Flatten consumes untranslated collection")
				}
				ins[i] = in
			}
			// Flatten is the engine's union: per batch the output stage
			// concatenates its parents' partitions, and the lineage
			// watermark downstream is the minimum over every branch's
			// assigners.
			streams[t.Output.ID()] = ins[0].Union(ins[1:]...).Named(s.Name())
			multiPart[t.Output.ID()] = true
			opCount++

		case beam.KindGroupByKey:
			in, ok := streams[t.Inputs[0].ID()]
			if !ok {
				return nil, 0, errors.New("sparkrunner: GroupByKey consumes untranslated collection")
			}
			kvCoder, ok := t.Inputs[0].Coder().(beam.KVCoder)
			if !ok {
				return nil, 0, fmt.Errorf("%w: GroupByKey over coder %s", ErrUnsupported, t.Inputs[0].Coder().Name())
			}
			gbkCfg := graphx.GBKConfig{
				Windowing: t.Inputs[0].Windowing(),
				Input:     kvCoder,
				Output:    t.Output.Coder(),
				Costs:     costs,
				Trace:     cfg.Cluster.Trace(),
			}
			if _, err := graphx.NewGBKState(gbkCfg); err != nil {
				if errors.Is(err, beam.ErrUnsupported) {
					return nil, 0, fmt.Errorf("%w: %v", ErrUnsupported, err)
				}
				return nil, 0, fmt.Errorf("sparkrunner: %w", err)
			}
			// The engine's micro-batch state path: with parallelism above
			// one the upstream redistribution scattered each key's
			// records round-robin, so a keyed shuffle reunites them
			// first; the stateful stage then runs the shared GroupByKey
			// executable per partition, firing watermark-ready panes at
			// batch boundaries and flushing on end of input.
			if cfg.Parallelism > 1 || multiPart[t.Inputs[0].ID()] {
				in = in.RepartitionByKey(cfg.Parallelism, graphx.EncodedKVKey)
				opCount++
			}
			streams[t.Output.ID()] = in.Stateful("GroupByKey", gbkStage(gbkCfg))
			multiPart[t.Output.ID()] = cfg.Parallelism > 1
			opCount++

		default:
			return nil, 0, fmt.Errorf("%w: %v (%s)", ErrUnsupported, s.Kind(), s.Name())
		}
	}
	return ssc, opCount, nil
}

// readAdapter wraps raw payloads into encoded KafkaRecord elements.
func readAdapter(topic string, coder beam.Coder, costs simcost.Costs) func(spark.TaskContext) func([]byte, func([]byte)) {
	return func(task spark.TaskContext) func([]byte, func([]byte)) {
		return func(rec []byte, emit func([]byte)) {
			task.Charge(costs.BeamDoFnPerRecord)
			wire, err := coder.Encode(beam.KafkaRecord{Topic: topic, Value: rec})
			if err != nil {
				return // malformed records are dropped, like a failed coder in a bundle retry
			}
			task.Charge(costs.CoderPerRecord)
			emit(wire)
		}
	}
}

// parDoStage invokes the DoFn per element inside each micro-batch task.
// A Setup failure fails the task (and the run) instead of processing
// records through an un-initialized DoFn.
func parDoStage(name string, fn beam.DoFn, inCoder, outCoder beam.Coder, costs simcost.Costs) func(spark.TaskContext) (func([]byte, func([]byte)), error) {
	return func(task spark.TaskContext) (func([]byte, func([]byte)), error) {
		if s, ok := fn.(beam.Setupper); ok {
			if err := s.Setup(); err != nil {
				return nil, fmt.Errorf("sparkrunner: stage %q setup: %w", name, err)
			}
		}
		return func(rec []byte, emit func([]byte)) {
			elem, err := inCoder.Decode(rec)
			if err != nil {
				return
			}
			task.Charge(costs.CoderPerRecord)
			task.Charge(costs.BeamDoFnPerRecord)
			bctx := beam.Context{Window: beam.GlobalWindow{}}
			// The emitter closure adapts the Beam SDK contract to the
			// engine collector: it is the SDK-harness hop whose cost the
			// benchmark quantifies.
			//beamvet:allow hotalloc the emitter adapter is the SDK-to-engine hop under measurement
			_ = fn.ProcessElement(bctx, elem, func(emitted any) error {
				wire, err := outCoder.Encode(emitted)
				if err != nil {
					return err
				}
				task.Charge(costs.CoderPerRecord)
				emit(wire)
				return nil
			})
		}, nil
	}
}

// gbkStage adapts the shared GroupByKey executable to the engine's
// stateful micro-batch interface: one GBKState per stage partition,
// persistent across batches, firing watermark-ready panes at every
// batch boundary and the rest at end of input.
func gbkStage(cfg graphx.GBKConfig) spark.StatefulFactory {
	return func(int) (spark.StatefulProcessor, error) {
		state, err := graphx.NewGBKState(cfg)
		if err != nil {
			return nil, fmt.Errorf("sparkrunner: %w", err)
		}
		return &gbkProcessor{state: state}, nil
	}
}

type gbkProcessor struct {
	state *graphx.GBKState
}

// asEmit adapts a spark emit callback to the GBKState error-returning
// signature. The callback arrives per Process call, so the adapter
// cannot be hoisted without an identity the spark API does not
// provide.
func asEmit(emit func([]byte)) func([]byte) error {
	//beamvet:allow hotalloc the void-to-error emit adapter re-wraps a per-call callback
	return func(rec []byte) error {
		emit(rec)
		return nil
	}
}

func (p *gbkProcessor) Process(task spark.TaskContext, rec []byte, emit func([]byte)) error {
	p.state.Charge(task.Charge)
	return p.state.Process(rec, asEmit(emit))
}

func (p *gbkProcessor) EndBatch(task spark.TaskContext, emit func([]byte)) error {
	p.state.Charge(task.Charge)
	// task.Watermark is the propagated lineage watermark: the minimum
	// over the upstream WindowInto assigners, end-of-time on the final
	// flush pass.
	return p.state.AdvanceWatermark(task.Watermark, asEmit(emit))
}

func (p *gbkProcessor) EndStream(task spark.TaskContext, emit func([]byte)) error {
	p.state.Charge(task.Charge)
	return p.state.Flush(asEmit(emit))
}

// writeSerializer decodes final elements back to raw bytes for the sink.
func writeSerializer(inCoder beam.Coder, costs simcost.Costs) func(spark.TaskContext) func([]byte, func([]byte)) {
	return func(task spark.TaskContext) func([]byte, func([]byte)) {
		return func(rec []byte, emit func([]byte)) {
			elem, err := inCoder.Decode(rec)
			if err != nil {
				return
			}
			task.Charge(costs.CoderPerRecord)
			if payload, ok := elem.([]byte); ok {
				task.Charge(costs.BeamDoFnPerRecord)
				emit(payload)
			}
		}
	}
}

func encodeAll(values []any, coder beam.Coder) ([][]byte, error) {
	out := make([][]byte, len(values))
	for i, v := range values {
		b, err := coder.Encode(v)
		if err != nil {
			return nil, err
		}
		out[i] = b
	}
	return out, nil
}
