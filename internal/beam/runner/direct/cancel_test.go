package direct

import (
	"context"
	"errors"
	"testing"
	"time"

	"beambench/internal/beam"
	"beambench/internal/broker"
)

// TestKafkaReadTargetHonorsCancellation pins the cancellation contract
// of the target-bounded read: when the topic never reaches its target
// (a crashed sender, a miscounted total), cancelling the context must
// unblock Run instead of leaving it polling forever.
func TestKafkaReadTargetHonorsCancellation(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", []string{"only", "three", "records"})
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	beam.KafkaWrite(p, b, "out", vals, broker.ProducerConfig{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		// Target 10 can never be reached: only 3 records will ever exist.
		_, err := Runner{}.Run(ctx, p, beam.Options{TargetRecords: 10})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("under-filled target read returned early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run still blocked after cancellation")
	}
}
