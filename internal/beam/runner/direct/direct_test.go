package direct

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"beambench/internal/beam"
	"beambench/internal/broker"
)

func loadTopic(t *testing.T, b *broker.Broker, topic string, values []string) {
	t.Helper()
	if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if err := p.Send(topic, nil, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func topicStrings(t *testing.T, b *broker.Broker, topic string) []string {
	t.Helper()
	c, err := b.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AssignAll(topic); err != nil {
		t.Fatal(err)
	}
	var out []string
	for {
		recs, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			return out
		}
		for _, r := range recs {
			out = append(out, string(r.Value))
		}
	}
}

func TestCreateAndParDo(t *testing.T) {
	p := beam.NewPipeline()
	col := beam.Create(p, []any{"a", "b", "c"})
	upper := beam.MapElements(p, "upper", func(v any) (any, error) {
		return strings.ToUpper(v.(string)), nil
	}, col)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Elements(upper)
	want := []any{"A", "B", "C"}
	if len(got) != len(want) {
		t.Fatalf("elements = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("elements = %v, want %v", got, want)
		}
	}
	if res.Counts["upper"] != 3 {
		t.Errorf("count = %d, want 3", res.Counts["upper"])
	}
}

func TestFilterAndFlatten(t *testing.T) {
	p := beam.NewPipeline()
	a := beam.Create(p, []any{"x1", "y2", "x3"})
	b := beam.Create(p, []any{"x4"})
	merged := beam.Flatten(p, a, b)
	xs := beam.Filter(p, "onlyX", func(v any) (bool, error) {
		return strings.HasPrefix(v.(string), "x"), nil
	}, merged)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Elements(xs)
	if len(got) != 3 {
		t.Errorf("filtered = %v, want 3 x-elements", got)
	}
}

func TestGroupByKeyBounded(t *testing.T) {
	p := beam.NewPipeline()
	col := beam.Create(p, []any{
		beam.KV{Key: "a", Value: "1"},
		beam.KV{Key: "b", Value: "2"},
		beam.KV{Key: "a", Value: "3"},
	})
	grouped := beam.GroupByKey(p, col)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Elements(grouped)
	if len(got) != 2 {
		t.Fatalf("groups = %d, want 2", len(got))
	}
	byKey := make(map[string][]any)
	for _, g := range got {
		gr := g.(beam.Grouped)
		byKey[gr.Key.(string)] = gr.Values
	}
	if len(byKey["a"]) != 2 || len(byKey["b"]) != 1 {
		t.Errorf("grouped values = %v", byKey)
	}
}

func TestGroupByKeyWithTriggerPanes(t *testing.T) {
	p := beam.NewPipeline()
	var values []any
	for i := range 5 {
		values = append(values, beam.KV{Key: "k", Value: fmt.Sprintf("v%d", i)})
	}
	col := beam.Create(p, values)
	triggered := beam.WindowInto(p, beam.DefaultWindowing().Triggering(beam.AfterCount{N: 2}), col)
	grouped := beam.GroupByKey(p, triggered)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Elements(grouped)
	// 5 values with AfterCount(2): panes of 2, 2, then a final pane of 1.
	if len(got) != 3 {
		t.Fatalf("panes = %d, want 3: %v", len(got), got)
	}
	sizes := make([]int, len(got))
	for i, g := range got {
		sizes[i] = len(g.(beam.Grouped).Values)
	}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 2 {
		t.Errorf("pane sizes = %v, want [1 2 2]", sizes)
	}
}

func TestWindowIntoGroupsPerWindow(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 1, Timestamps: broker.CreateTime}); err != nil {
		t.Fatal(err)
	}
	prod, err := b.NewProducer(broker.ProducerConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	// Two records in second 0, one in second 1, same key.
	for i, off := range []time.Duration{0, 100 * time.Millisecond, 1100 * time.Millisecond} {
		if err := prod.SendAt("in", nil, []byte(fmt.Sprintf("v%d", i)), base.Add(off)); err != nil {
			t.Fatal(err)
		}
	}
	if err := prod.Close(); err != nil {
		t.Fatal(err)
	}

	p := beam.NewPipeline()
	kvs := beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in"))
	keyed := beam.MapElements(p, "constkey", func(v any) (any, error) {
		kv := v.(beam.KV)
		return beam.KV{Key: "k", Value: kv.Value}, nil
	}, kvs, beam.WithCoder(beam.KVCoder{Key: beam.StringUTF8Coder{}, Value: beam.BytesCoder{}}))
	windowed := beam.WindowInto(p, beam.WindowingStrategy{Fn: beam.FixedWindows{Size: time.Second}}, keyed)
	grouped := beam.GroupByKey(p, windowed)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Elements(grouped)
	if len(got) != 2 {
		t.Fatalf("windowed groups = %d, want 2 (two one-second windows)", len(got))
	}
	sizes := []int{len(got[0].(beam.Grouped).Values), len(got[1].(beam.Grouped).Values)}
	sort.Ints(sizes)
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Errorf("window group sizes = %v, want [1 2]", sizes)
	}
}

func TestKafkaReadToWriteEndToEnd(t *testing.T) {
	b := broker.New()
	loadTopic(t, b, "in", []string{"alpha test", "beta", "testing", "gamma"})
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}

	p := beam.NewPipeline()
	vals := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "in")))
	grep := beam.Filter(p, "grep", func(v any) (bool, error) {
		return bytes.Contains(v.([]byte), []byte("test")), nil
	}, vals)
	beam.KafkaWrite(p, b, "out", grep, broker.ProducerConfig{})

	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	got := topicStrings(t, b, "out")
	want := []string{"alpha test", "testing"}
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
}

func TestKafkaWriteRequiresBytes(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p := beam.NewPipeline()
	col := beam.Create(p, []any{"a string, not bytes"})
	beam.KafkaWrite(p, b, "out", col, broker.ProducerConfig{})
	if _, err := Run(p); err == nil {
		t.Error("non-bytes KafkaWrite succeeded")
	}
}

func TestDoFnLifecycleHooks(t *testing.T) {
	p := beam.NewPipeline()
	col := beam.Create(p, []any{"x"})
	fn := &lifecycleFn{}
	beam.ParDo(p, "hooked", fn, col)
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	if !fn.setup || !fn.teardown {
		t.Errorf("lifecycle hooks: setup=%v teardown=%v", fn.setup, fn.teardown)
	}
}

type lifecycleFn struct {
	setup    bool
	teardown bool
}

func (f *lifecycleFn) Setup() error    { f.setup = true; return nil }
func (f *lifecycleFn) Teardown() error { f.teardown = true; return nil }
func (f *lifecycleFn) ProcessElement(ctx beam.Context, elem any, emit beam.Emitter) error {
	return emit(elem)
}

func TestDoFnErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	p := beam.NewPipeline()
	col := beam.Create(p, []any{"x"})
	beam.ParDo(p, "explode", beam.DoFnFunc(func(ctx beam.Context, elem any, emit beam.Emitter) error {
		return boom
	}), col)
	if _, err := Run(p); !errors.Is(err, boom) {
		t.Errorf("Run = %v, want boom", err)
	}
}

func TestRunInvalidPipeline(t *testing.T) {
	if _, err := Run(beam.NewPipeline()); err == nil {
		t.Error("empty pipeline ran")
	}
}

func TestWithKeysAndValuesAndKeys(t *testing.T) {
	p := beam.NewPipeline()
	col := beam.Create(p, []any{"apple", "avocado", "banana"})
	keyed := beam.WithKeys(p, "firstLetter", func(v any) (any, error) {
		return v.(string)[:1], nil
	}, col)
	keys := beam.Keys(p, keyed)
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Elements(keys)
	if len(got) != 3 || got[0] != "a" || got[2] != "b" {
		t.Errorf("keys = %v", got)
	}
}
