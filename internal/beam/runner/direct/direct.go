// Package direct executes bounded Beam pipelines in memory, in process,
// without an engine. It is the reference for transform semantics: the
// engine runners must agree with it on outputs (differing only in cost),
// and the SDK's own tests run against it.
//
// The runner executes the execution plan produced by the shared
// optimizer (internal/beam/graphx); with fusion enabled a chain of
// ParDos runs as one stage whose intermediate collections are never
// materialized, which is exactly what fusion buys on the engines.
package direct

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"beambench/internal/beam"
	"beambench/internal/beam/graphx"
	"beambench/internal/broker"
	"beambench/internal/metrics"
	"beambench/internal/obs"
)

// Name is the runner's registry name.
const Name = "direct"

func init() {
	beam.RegisterRunner(Name, Runner{})
}

// Runner implements beam.Runner. The direct runner ignores Parallelism,
// Costs and Sim: it has no engine to charge.
type Runner struct{}

// Run implements beam.Runner.
func (Runner) Run(ctx context.Context, p *beam.Pipeline, opts beam.Options) (beam.Result, error) {
	// Fusion is off by default: the direct runner materializes every
	// collection so tests can inspect intermediates.
	return run(ctx, p, opts.Fusion.Enabled(false), opts.Metrics, opts.Trace, opts.TargetRecords)
}

// Result holds the materialized outputs of a pipeline run.
type Result struct {
	// Collections maps PCollection IDs to their materialized elements
	// in processing order.
	Collections map[int][]any
	// Counts maps stage names to emitted element counts.
	Counts map[string]int64

	operators int
}

// Elements returns the materialized elements of a collection. Inside a
// fused stage only the stage's final output is materialized.
func (r *Result) Elements(col beam.PCollection) []any {
	return r.Collections[col.ID()]
}

// OperatorCount implements beam.Result: the number of executed stages.
func (r *Result) OperatorCount() int { return r.operators }

// Metrics implements beam.Result.
func (r *Result) Metrics() map[string]int64 {
	out := make(map[string]int64, len(r.Counts))
	for k, v := range r.Counts {
		out[k] = v
	}
	return out
}

// windowedValue carries an element with its timestamp and window.
type windowedValue struct {
	value  any
	ts     time.Time
	window beam.Window
}

// Run executes the pipeline to completion and materializes every
// collection (no fusion). KafkaRead consumes the topic's current
// contents as a bounded snapshot; KafkaWrite produces to the broker.
// Use the runner registry with beam.Options.TargetRecords to instead
// block until a known total has been appended to the topic.
func Run(p *beam.Pipeline) (*Result, error) {
	return run(context.Background(), p, false, nil, nil, 0)
}

func run(ctx context.Context, p *beam.Pipeline, fused bool, col *metrics.Collector, tr *obs.Tracer, target int64) (*Result, error) {
	plan, err := graphx.Lower(p, graphx.Options{Fusion: fused})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Collections: make(map[int][]any),
		Counts:      make(map[string]int64),
		operators:   plan.OperatorCount(),
	}
	data := make(map[int][]windowedValue)
	for _, s := range plan.Stages {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		sp := tr.Span("direct/"+s.Name(), "stage")
		out, err := runStage(ctx, s, data, target)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("direct: stage %q: %w", s.Name(), err)
		}
		if s.Output().Valid() {
			data[s.Output().ID()] = out
			vals := make([]any, len(out))
			for i, wv := range out {
				vals[i] = wv.value
			}
			res.Collections[s.Output().ID()] = vals
			res.Counts[s.Name()] += int64(len(out))
			col.Stage(s.Name()).Mark(int64(len(out)))
		} else if len(s.Transforms[0].Inputs) > 0 {
			// Sinks have no output collection; their throughput is the
			// records they consumed.
			col.Stage(s.Name()).Mark(int64(len(data[s.Transforms[0].Inputs[0].ID()])))
		}
	}
	return res, nil
}

func runStage(ctx context.Context, s *graphx.Stage, data map[int][]windowedValue, target int64) ([]windowedValue, error) {
	t := s.Transforms[0]
	switch s.Kind() {
	case beam.KindCreate:
		return runCreate(t)
	case beam.KindParDo:
		return runParDo(s, data)
	case beam.KindFlatten:
		var out []windowedValue
		for _, in := range t.Inputs {
			out = append(out, data[in.ID()]...)
		}
		return out, nil
	case beam.KindWindowInto:
		return runWindowInto(t, data)
	case beam.KindGroupByKey:
		return runGBK(t, data)
	case beam.KindKafkaRead:
		return runKafkaRead(ctx, t, target)
	case beam.KindKafkaWrite:
		return nil, runKafkaWrite(t, data)
	default:
		return nil, fmt.Errorf("%w: kind %v", beam.ErrUnsupported, s.Kind())
	}
}

func runCreate(t *beam.Transform) ([]windowedValue, error) {
	values, ok := t.Config.([]any)
	if !ok {
		return nil, errors.New("malformed Create config")
	}
	out := make([]windowedValue, len(values))
	for i, v := range values {
		out[i] = windowedValue{value: v, ts: time.Unix(0, 0).UTC(), window: beam.GlobalWindow{}}
	}
	return out, nil
}

// runParDo executes a ParDo stage; for a fused stage the composed fn
// runs the whole chain per element, in memory.
func runParDo(s *graphx.Stage, data map[int][]windowedValue) ([]windowedValue, error) {
	fn := s.Fn()
	if setup, ok := fn.(beam.Setupper); ok {
		if err := setup.Setup(); err != nil {
			return nil, fmt.Errorf("setup: %w", err)
		}
	}
	var out []windowedValue
	for _, wv := range data[s.Inputs()[0].ID()] {
		ctx := beam.Context{Timestamp: wv.ts, Window: wv.window}
		err := fn.ProcessElement(ctx, wv.value, func(elem any) error {
			out = append(out, windowedValue{value: elem, ts: wv.ts, window: wv.window})
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if td, ok := fn.(beam.Teardowner); ok {
		if err := td.Teardown(); err != nil {
			return nil, fmt.Errorf("teardown: %w", err)
		}
	}
	return out, nil
}

func runWindowInto(t *beam.Transform, data map[int][]windowedValue) ([]windowedValue, error) {
	ws, ok := t.Config.(beam.WindowingStrategy)
	if !ok {
		return nil, errors.New("malformed WindowInto config")
	}
	var out []windowedValue
	for _, wv := range data[t.Inputs[0].ID()] {
		ts := wv.ts
		// An element-derived event time re-stamps the element before
		// window assignment — the deterministic path the engine runners
		// require, honored here too so outputs agree.
		if ws.EventTime != nil {
			et, err := ws.EventTime(wv.value)
			if err != nil {
				return nil, fmt.Errorf("event time: %w", err)
			}
			ts = et
		}
		for _, w := range ws.Fn.AssignWindows(ts) {
			out = append(out, windowedValue{value: wv.value, ts: ts, window: w})
		}
	}
	return out, nil
}

func runGBK(t *beam.Transform, data map[int][]windowedValue) ([]windowedValue, error) {
	in := data[t.Inputs[0].ID()]
	trigger := t.Inputs[0].Windowing().Trigger
	fireAfter := 0
	if trigger != nil {
		fireAfter = trigger.FireAfter()
	}

	type groupKey struct {
		window string
		key    string
	}
	groups := make(map[groupKey]*windowedValue)
	var order []groupKey
	var out []windowedValue

	for _, wv := range in {
		kv, ok := wv.value.(beam.KV)
		if !ok {
			return nil, fmt.Errorf("GroupByKey input %T is not a KV", wv.value)
		}
		ks, err := beam.KeyString(kv.Key)
		if err != nil {
			return nil, err
		}
		gk := groupKey{window: wv.window.Key(), key: ks}
		g, ok := groups[gk]
		if !ok {
			g = &windowedValue{
				value:  beam.Grouped{Key: kv.Key, Window: wv.window},
				ts:     wv.window.MaxTimestamp(),
				window: wv.window,
			}
			groups[gk] = g
			order = append(order, gk)
		}
		grouped := g.value.(beam.Grouped)
		grouped.Values = append(grouped.Values, kv.Value)
		g.value = grouped
		// Count-based trigger pane: fire and reset this key's values.
		if fireAfter > 0 && len(grouped.Values) >= fireAfter {
			out = append(out, *g)
			grouped.Values = nil
			g.value = grouped
		}
	}
	// Final panes at end of input: ascending window time, keys in
	// first-seen order within each window — the same deterministic pane
	// order the engines' watermark-driven firing produces, so engine
	// outputs can be compared against this runner record for record.
	// (A stable sort on the window bound preserves first-seen order for
	// panes of one window, and is a no-op for all-global grouping.)
	sort.SliceStable(order, func(i, j int) bool {
		return groups[order[i]].window.MaxTimestamp().Before(groups[order[j]].window.MaxTimestamp())
	})
	for _, gk := range order {
		g := groups[gk]
		if grouped := g.value.(beam.Grouped); len(grouped.Values) > 0 {
			out = append(out, *g)
		}
	}
	return out, nil
}

// _readIdlePoll is how long the KafkaRead stage waits for new data
// before re-checking whether a target-bounded topic is complete.
const _readIdlePoll = 20 * time.Millisecond

// runKafkaRead consumes the topic. With target > 0 it blocks — polling
// via PollWait — until target records have been appended in total (the
// harness contract for both preloaded and concurrently filling topics);
// with target <= 0 it degrades to a bounded snapshot of the topic's
// current contents. The blocking loop honors ctx, so a cancelled run
// stops waiting for records that may never arrive.
func runKafkaRead(ctx context.Context, t *beam.Transform, target int64) ([]windowedValue, error) {
	cfg, ok := t.Config.(beam.KafkaReadConfig)
	if !ok {
		return nil, errors.New("malformed KafkaRead config")
	}
	parts, err := cfg.Broker.Partitions(cfg.Topic)
	if err != nil {
		return nil, err
	}
	consumer, err := cfg.Broker.NewConsumer(broker.ConsumerConfig{MaxPollRecords: 10_000})
	if err != nil {
		return nil, err
	}
	assigned := make([]int, parts)
	for p := range parts {
		if err := consumer.Assign(cfg.Topic, p, 0); err != nil {
			return nil, err
		}
		assigned[p] = p
	}
	eoi, err := broker.NewEndOfInput(cfg.Broker, cfg.Topic, target, assigned)
	if err != nil {
		return nil, err
	}
	var out []windowedValue
	for !eoi.Drained() {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		recs, err := consumer.PollWait(_readIdlePoll)
		if err != nil {
			return nil, err
		}
		for _, r := range recs {
			if !eoi.Admit(r) {
				continue // appended after the bounded snapshot
			}
			out = append(out, windowedValue{
				value: beam.KafkaRecord{
					Topic:     r.Topic,
					Partition: r.Partition,
					Offset:    r.Offset,
					Timestamp: r.Timestamp,
					Key:       r.Key,
					Value:     r.Value,
				},
				ts:     r.Timestamp,
				window: beam.GlobalWindow{},
			})
		}
	}
	return out, nil
}

func runKafkaWrite(t *beam.Transform, data map[int][]windowedValue) error {
	cfg, ok := t.Config.(beam.KafkaWriteConfig)
	if !ok {
		return errors.New("malformed KafkaWrite config")
	}
	producer, err := cfg.Broker.NewProducer(cfg.Producer)
	if err != nil {
		return err
	}
	for _, wv := range data[t.Inputs[0].ID()] {
		b, ok := wv.value.([]byte)
		if !ok {
			return fmt.Errorf("KafkaWrite element %T is not []byte", wv.value)
		}
		if err := producer.Send(cfg.Topic, nil, b); err != nil {
			return err
		}
	}
	return producer.Close()
}
