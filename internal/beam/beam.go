// Package beam implements the abstraction layer under evaluation in
// Hesse et al. (ICDCS 2019): an Apache-Beam-style unified programming
// model. Applications are Pipelines of PTransforms over PCollections and
// can be executed unchanged by any registered runner (direct, Flink,
// Spark Streaming, Apex) — exactly the substitution-cost argument the
// paper examines, including its price: runners translate each Beam
// primitive to a separate engine operator with coder boundaries, which
// is the overhead the benchmark quantifies.
//
// The SDK models the core constructs of Section II-A: ParDo
// (element-wise processing), GroupByKey (keyed aggregation, requiring
// non-global windowing or a trigger on unbounded data), Flatten (merge),
// windowing strategies, coders, and the KafkaIO connector with
// WithoutMetadata and Values.
package beam

import (
	"errors"
	"fmt"

	"beambench/internal/dag"
)

// TransformKind enumerates the primitive transforms runners translate.
type TransformKind int

const (
	// KindCreate materializes in-memory values as a bounded collection.
	KindCreate TransformKind = iota + 1
	// KindParDo is element-by-element processing with a DoFn.
	KindParDo
	// KindFlatten merges several collections of the same type.
	KindFlatten
	// KindGroupByKey groups KV elements by key per window.
	KindGroupByKey
	// KindWindowInto reassigns elements to windows.
	KindWindowInto
	// KindKafkaRead is the KafkaIO read connector.
	KindKafkaRead
	// KindKafkaWrite is the KafkaIO write connector.
	KindKafkaWrite
)

// String names the kind as the runner translation layer reports it.
func (k TransformKind) String() string {
	switch k {
	case KindCreate:
		return "Create"
	case KindParDo:
		return "ParDo"
	case KindFlatten:
		return "Flatten"
	case KindGroupByKey:
		return "GroupByKey"
	case KindWindowInto:
		return "Window.Into"
	case KindKafkaRead:
		return "KafkaIO.Read"
	case KindKafkaWrite:
		return "KafkaIO.Write"
	default:
		return fmt.Sprintf("TransformKind(%d)", int(k))
	}
}

// Pipeline is a DAG of transforms under construction.
type Pipeline struct {
	transforms []*Transform
	pcols      []*pcollNode
	err        error
}

// NewPipeline returns an empty pipeline.
func NewPipeline() *Pipeline {
	return &Pipeline{}
}

func (p *Pipeline) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// Err returns the first construction error, if any.
func (p *Pipeline) Err() error { return p.err }

// Transform is one node of the pipeline graph. Fields are exported for
// runner translation.
type Transform struct {
	// ID is the node's index in construction order.
	ID int
	// Name is the user-visible transform label.
	Name string
	// Kind selects the primitive.
	Kind TransformKind
	// Fn is the DoFn for KindParDo.
	Fn DoFn
	// Inputs are the consumed collections (one, except Flatten).
	Inputs []PCollection
	// Output is the produced collection; zero PCollection for sinks.
	Output PCollection
	// Config carries connector-specific configuration (KafkaReadConfig,
	// KafkaWriteConfig, WindowingStrategy for KindWindowInto).
	Config any
}

// pcollNode is the internal state behind a PCollection handle.
type pcollNode struct {
	id        int
	coder     Coder
	bounded   bool
	windowing WindowingStrategy
	producer  *Transform
}

// PCollection is a handle to a (possibly unbounded) distributed data set.
type PCollection struct {
	p    *Pipeline
	node *pcollNode
}

// Valid reports whether the handle refers to a collection.
func (c PCollection) Valid() bool { return c.node != nil }

// Coder returns the collection's element coder.
func (c PCollection) Coder() Coder {
	if c.node == nil {
		return nil
	}
	return c.node.coder
}

// Bounded reports whether the collection is bounded.
func (c PCollection) Bounded() bool { return c.node != nil && c.node.bounded }

// Windowing returns the collection's windowing strategy.
func (c PCollection) Windowing() WindowingStrategy {
	if c.node == nil {
		return DefaultWindowing()
	}
	return c.node.windowing
}

// ID returns the collection's unique id within the pipeline.
func (c PCollection) ID() int {
	if c.node == nil {
		return -1
	}
	return c.node.id
}

func (p *Pipeline) newPCollection(coder Coder, bounded bool, w WindowingStrategy, producer *Transform) PCollection {
	node := &pcollNode{
		id:        len(p.pcols),
		coder:     coder,
		bounded:   bounded,
		windowing: w,
		producer:  producer,
	}
	p.pcols = append(p.pcols, node)
	return PCollection{p: p, node: node}
}

func (p *Pipeline) addTransform(t *Transform) *Transform {
	t.ID = len(p.transforms)
	p.transforms = append(p.transforms, t)
	return t
}

// Transforms returns the pipeline's transforms in construction order,
// for runner translation.
func (p *Pipeline) Transforms() []*Transform {
	out := make([]*Transform, len(p.transforms))
	copy(out, p.transforms)
	return out
}

// Option configures a transform application.
type Option interface {
	apply(*applyOptions)
}

type applyOptions struct {
	coder Coder
}

type coderOption struct{ c Coder }

func (o coderOption) apply(a *applyOptions) { a.coder = o.c }

// WithCoder sets the output collection's coder explicitly.
func WithCoder(c Coder) Option {
	return coderOption{c: c}
}

func gatherOptions(opts []Option) applyOptions {
	var a applyOptions
	for _, o := range opts {
		o.apply(&a)
	}
	return a
}

// Create returns a bounded collection of the given values.
func Create(p *Pipeline, values []any, opts ...Option) PCollection {
	a := gatherOptions(opts)
	coder := a.coder
	if coder == nil {
		coder = inferCoder(values)
	}
	t := p.addTransform(&Transform{Name: "Create", Kind: KindCreate, Config: values})
	out := p.newPCollection(coder, true /* bounded */, DefaultWindowing(), t)
	t.Output = out
	return out
}

// ParDo applies a DoFn element-wise and returns the output collection.
func ParDo(p *Pipeline, name string, fn DoFn, in PCollection, opts ...Option) PCollection {
	if fn == nil {
		p.fail(fmt.Errorf("beam: ParDo %q: nil DoFn", name))
	}
	if !in.Valid() {
		p.fail(fmt.Errorf("beam: ParDo %q: invalid input", name))
		return PCollection{}
	}
	a := gatherOptions(opts)
	coder := a.coder
	if coder == nil {
		coder = in.node.coder
	}
	t := p.addTransform(&Transform{Name: name, Kind: KindParDo, Fn: fn, Inputs: []PCollection{in}})
	out := p.newPCollection(coder, in.node.bounded, in.node.windowing, t)
	t.Output = out
	return out
}

// Flatten merges collections with identical coders into one.
func Flatten(p *Pipeline, ins ...PCollection) PCollection {
	if len(ins) == 0 {
		p.fail(errors.New("beam: Flatten of zero collections"))
		return PCollection{}
	}
	for _, in := range ins {
		if !in.Valid() {
			p.fail(errors.New("beam: Flatten: invalid input"))
			return PCollection{}
		}
	}
	coder := ins[0].node.coder
	windowing := ins[0].node.windowing
	bounded := true
	for _, in := range ins {
		if in.node.coder.Name() != coder.Name() {
			p.fail(fmt.Errorf("beam: Flatten: mixed coders %s and %s", coder.Name(), in.node.coder.Name()))
		}
		// Merging differently-windowed inputs would silently adopt the
		// first input's strategy; the Beam model requires identical
		// windowing across Flatten inputs.
		if in.node.windowing.Key() != windowing.Key() {
			p.fail(fmt.Errorf("beam: Flatten: mismatched windowing strategies %s and %s",
				windowing.Key(), in.node.windowing.Key()))
		}
		if !in.node.bounded {
			bounded = false
		}
	}
	t := p.addTransform(&Transform{Name: "Flatten", Kind: KindFlatten, Inputs: append([]PCollection(nil), ins...)})
	out := p.newPCollection(coder, bounded, ins[0].node.windowing, t)
	t.Output = out
	return out
}

// GroupByKey groups a KV collection by key within each window. On an
// unbounded collection it requires non-global windowing or a trigger,
// matching the constraint described in Section II-A of the paper.
func GroupByKey(p *Pipeline, in PCollection) PCollection {
	if !in.Valid() {
		p.fail(errors.New("beam: GroupByKey: invalid input"))
		return PCollection{}
	}
	w := in.node.windowing
	if !in.node.bounded && w.IsGlobal() && w.Trigger == nil {
		p.fail(errors.New("beam: GroupByKey on an unbounded collection requires non-global windowing or an aggregation trigger"))
	}
	t := p.addTransform(&Transform{Name: "GroupByKey", Kind: KindGroupByKey, Inputs: []PCollection{in}})
	out := p.newPCollection(GroupedCoder{}, in.node.bounded, w, t)
	t.Output = out
	return out
}

// WindowInto reassigns elements of a collection to windows.
func WindowInto(p *Pipeline, ws WindowingStrategy, in PCollection) PCollection {
	if !in.Valid() {
		p.fail(errors.New("beam: WindowInto: invalid input"))
		return PCollection{}
	}
	if ws.Fn == nil {
		p.fail(errors.New("beam: WindowInto: nil window fn"))
		return in
	}
	t := p.addTransform(&Transform{Name: "Window.Into " + ws.Fn.Name(), Kind: KindWindowInto, Inputs: []PCollection{in}, Config: ws})
	out := p.newPCollection(in.node.coder, in.node.bounded, ws, t)
	t.Output = out
	return out
}

// Validate checks the pipeline graph for structural errors.
func (p *Pipeline) Validate() error {
	if p.err != nil {
		return p.err
	}
	if len(p.transforms) == 0 {
		return errors.New("beam: empty pipeline")
	}
	consumed := make(map[int]bool)
	produced := make(map[int]bool)
	for _, t := range p.transforms {
		for _, in := range t.Inputs {
			consumed[in.ID()] = true
		}
		if t.Output.Valid() {
			if produced[t.Output.ID()] {
				return fmt.Errorf("beam: collection %d produced twice", t.Output.ID())
			}
			produced[t.Output.ID()] = true
		}
	}
	for _, t := range p.transforms {
		if t.Kind != KindKafkaRead && t.Kind != KindCreate && len(t.Inputs) == 0 {
			return fmt.Errorf("beam: transform %q has no input", t.Name)
		}
	}
	return nil
}

// Plan renders the pipeline's logical graph.
func (p *Pipeline) Plan() (*dag.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := dag.New()
	for _, t := range p.transforms {
		kind := dag.KindOperator
		if len(t.Inputs) == 0 {
			kind = dag.KindSource
		}
		if !t.Output.Valid() {
			kind = dag.KindSink
		}
		name := t.Name
		if name == "" {
			name = t.Kind.String()
		}
		if err := g.AddNode(dag.Node{
			ID:          fmt.Sprintf("t%d", t.ID),
			Name:        name,
			Kind:        kind,
			Parallelism: 1,
		}); err != nil {
			return nil, err
		}
	}
	producerOf := make(map[int]*Transform)
	for _, t := range p.transforms {
		if t.Output.Valid() {
			producerOf[t.Output.ID()] = t
		}
	}
	for _, t := range p.transforms {
		for _, in := range t.Inputs {
			if src, ok := producerOf[in.ID()]; ok {
				if err := g.AddEdge(fmt.Sprintf("t%d", src.ID), fmt.Sprintf("t%d", t.ID)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}
