package beam

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestBytesCoderRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		enc, err := (BytesCoder{}).Encode(b)
		if err != nil {
			return false
		}
		dec, err := (BytesCoder{}).Decode(enc)
		if err != nil {
			return false
		}
		return bytes.Equal(dec.([]byte), b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesCoderIsolation(t *testing.T) {
	src := []byte("data")
	enc, err := (BytesCoder{}).Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 'X'
	if string(enc) != "data" {
		t.Error("encode did not copy its input")
	}
}

func TestBytesCoderTypeError(t *testing.T) {
	if _, err := (BytesCoder{}).Encode("not bytes"); err == nil {
		t.Error("string accepted by bytes coder")
	}
}

func TestStringCoderRoundTrip(t *testing.T) {
	f := func(s string) bool {
		enc, err := (StringUTF8Coder{}).Encode(s)
		if err != nil {
			return false
		}
		dec, err := (StringUTF8Coder{}).Decode(enc)
		return err == nil && dec.(string) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := (StringUTF8Coder{}).Encode(42); err == nil {
		t.Error("int accepted by string coder")
	}
}

func TestVarIntCoderRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		enc, err := (VarIntCoder{}).Encode(n)
		if err != nil {
			return false
		}
		dec, err := (VarIntCoder{}).Decode(enc)
		return err == nil && dec.(int64) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Plain int is accepted too.
	enc, err := (VarIntCoder{}).Encode(7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := (VarIntCoder{}).Decode(enc)
	if err != nil || dec.(int64) != 7 {
		t.Errorf("int round trip = %v, %v", dec, err)
	}
	if _, err := (VarIntCoder{}).Encode("x"); err == nil {
		t.Error("string accepted by varint coder")
	}
	if _, err := (VarIntCoder{}).Decode(nil); err == nil {
		t.Error("empty input decoded")
	}
}

func TestKVCoderRoundTrip(t *testing.T) {
	c := KVCoder{Key: BytesCoder{}, Value: BytesCoder{}}
	f := func(k, v []byte) bool {
		enc, err := c.Encode(KV{Key: k, Value: v})
		if err != nil {
			return false
		}
		dec, err := c.Decode(enc)
		if err != nil {
			return false
		}
		kv := dec.(KV)
		return bytes.Equal(kv.Key.([]byte), k) && bytes.Equal(kv.Value.([]byte), v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKVCoderErrors(t *testing.T) {
	c := KVCoder{Key: BytesCoder{}, Value: BytesCoder{}}
	if _, err := c.Encode("not a kv"); err == nil {
		t.Error("non-KV accepted")
	}
	if _, err := c.Encode(KV{Key: "string", Value: []byte("v")}); err == nil {
		t.Error("mismatched key type accepted")
	}
	if _, err := c.Decode([]byte{0xFF}); err == nil {
		t.Error("garbage decoded")
	}
	missing := KVCoder{}
	if _, err := missing.Encode(KV{}); err == nil {
		t.Error("missing component coders accepted")
	}
	if got := c.Name(); got != "kv<bytes,bytes>" {
		t.Errorf("Name = %q", got)
	}
}

func TestKafkaRecordCoderRoundTrip(t *testing.T) {
	c := KafkaRecordCoder{}
	f := func(topic string, part uint8, off int64, key, val []byte) bool {
		rec := KafkaRecord{
			Topic:     topic,
			Partition: int(part),
			Offset:    off,
			Timestamp: time.Unix(0, 1234567890).UTC(),
			Key:       key,
			Value:     val,
		}
		enc, err := c.Encode(rec)
		if err != nil {
			return false
		}
		dec, err := c.Decode(enc)
		if err != nil {
			return false
		}
		got := dec.(KafkaRecord)
		return got.Topic == rec.Topic &&
			got.Partition == rec.Partition &&
			got.Offset == rec.Offset &&
			got.Timestamp.Equal(rec.Timestamp) &&
			bytes.Equal(got.Key, rec.Key) &&
			bytes.Equal(got.Value, rec.Value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := c.Encode(42); err == nil {
		t.Error("non-record accepted")
	}
	if _, err := c.Decode([]byte{0xFF, 0xFF}); err == nil {
		t.Error("garbage decoded")
	}
}

func TestGroupedCoderRoundTrip(t *testing.T) {
	c := GroupedCoder{}
	g := Grouped{Key: "k", Values: []any{"a", "b", "c"}}
	enc, err := c.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	got := dec.(Grouped)
	if got.Key != "k" || len(got.Values) != 3 || got.Values[1] != "b" {
		t.Errorf("round trip = %+v", got)
	}
	if _, err := c.Encode("nope"); err == nil {
		t.Error("non-grouped accepted")
	}
	if _, err := c.Encode(Grouped{Key: 42}); err == nil {
		t.Error("unsupported key type accepted")
	}
	if _, err := c.Decode([]byte{0xFF}); err == nil {
		t.Error("garbage decoded")
	}
}

func TestCoderNames(t *testing.T) {
	tests := []struct {
		give Coder
		want string
	}{
		{give: BytesCoder{}, want: "bytes"},
		{give: StringUTF8Coder{}, want: "stringutf8"},
		{give: VarIntCoder{}, want: "varint"},
		{give: KafkaRecordCoder{}, want: "kafkarecord"},
		{give: GroupedCoder{}, want: "grouped"},
	}
	for _, tt := range tests {
		if got := tt.give.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}
