package beam

import (
	"strings"
	"testing"
	"time"

	"beambench/internal/broker"
)

func TestPipelineConstructionLinear(t *testing.T) {
	p := NewPipeline()
	col := Create(p, []any{"a", "b"})
	out := MapElements(p, "upper", func(v any) (any, error) {
		return strings.ToUpper(v.(string)), nil
	}, col)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !out.Valid() || !out.Bounded() {
		t.Errorf("output = valid:%v bounded:%v", out.Valid(), out.Bounded())
	}
	if got := len(p.Transforms()); got != 2 {
		t.Errorf("transforms = %d, want 2", got)
	}
	if out.Coder().Name() != "stringutf8" {
		t.Errorf("inferred coder = %q, want stringutf8", out.Coder().Name())
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if err := NewPipeline().Validate(); err == nil {
			t.Error("empty pipeline validated")
		}
	})
	t.Run("nil dofn", func(t *testing.T) {
		p := NewPipeline()
		col := Create(p, []any{"a"})
		ParDo(p, "bad", nil, col)
		if err := p.Validate(); err == nil {
			t.Error("nil DoFn validated")
		}
	})
	t.Run("invalid input", func(t *testing.T) {
		p := NewPipeline()
		ParDo(p, "bad", DoFnFunc(func(Context, any, Emitter) error { return nil }), PCollection{})
		if err := p.Validate(); err == nil {
			t.Error("invalid input validated")
		}
	})
	t.Run("flatten empty", func(t *testing.T) {
		p := NewPipeline()
		Flatten(p)
		if err := p.Validate(); err == nil {
			t.Error("empty flatten validated")
		}
	})
	t.Run("flatten mixed coders", func(t *testing.T) {
		p := NewPipeline()
		a := Create(p, []any{"a"})
		b := Create(p, []any{[]byte("b")})
		Flatten(p, a, b)
		if err := p.Validate(); err == nil {
			t.Error("mixed-coder flatten validated")
		}
	})
	t.Run("flatten mismatched windowing", func(t *testing.T) {
		p := NewPipeline()
		a := Create(p, []any{"a"})
		b := WindowInto(p, WindowingStrategy{Fn: FixedWindows{Size: time.Minute}}, Create(p, []any{"b"}))
		Flatten(p, a, b)
		err := p.Validate()
		if err == nil {
			t.Fatal("mismatched-windowing flatten validated")
		}
		if !strings.Contains(err.Error(), "windowing") {
			t.Errorf("error %q does not mention windowing", err)
		}
	})
	t.Run("flatten mismatched triggers", func(t *testing.T) {
		p := NewPipeline()
		a := Create(p, []any{"a"})
		b := WindowInto(p, DefaultWindowing().Triggering(AfterCount{N: 2}), Create(p, []any{"b"}))
		Flatten(p, a, b)
		if err := p.Validate(); err == nil {
			t.Error("mismatched-trigger flatten validated")
		}
	})
	t.Run("flatten identical windowing ok", func(t *testing.T) {
		p := NewPipeline()
		ws := WindowingStrategy{Fn: FixedWindows{Size: time.Minute}}
		a := WindowInto(p, ws, Create(p, []any{"a"}))
		b := WindowInto(p, ws, Create(p, []any{"b"}))
		Flatten(p, a, b)
		if err := p.Validate(); err != nil {
			t.Errorf("identically-windowed flatten rejected: %v", err)
		}
	})
}

func TestGroupByKeyUnboundedGlobalRejected(t *testing.T) {
	// Mirrors the Beam rule in Section II-A: GBK over an unbounded
	// collection needs non-global windowing or a trigger.
	b := broker.New()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}

	t.Run("rejected without windowing", func(t *testing.T) {
		p := NewPipeline()
		kvs := WithoutMetadata(p, KafkaRead(p, b, "in"))
		GroupByKey(p, kvs)
		if err := p.Validate(); err == nil {
			t.Error("unbounded global GBK validated")
		}
	})
	t.Run("allowed with fixed windows", func(t *testing.T) {
		p := NewPipeline()
		kvs := WithoutMetadata(p, KafkaRead(p, b, "in"))
		windowed := WindowInto(p, WindowingStrategy{Fn: FixedWindows{Size: time.Second}}, kvs)
		GroupByKey(p, windowed)
		if err := p.Validate(); err != nil {
			t.Errorf("windowed GBK rejected: %v", err)
		}
	})
	t.Run("allowed with trigger", func(t *testing.T) {
		p := NewPipeline()
		kvs := WithoutMetadata(p, KafkaRead(p, b, "in"))
		triggered := WindowInto(p, DefaultWindowing().Triggering(AfterCount{N: 10}), kvs)
		GroupByKey(p, triggered)
		if err := p.Validate(); err != nil {
			t.Errorf("triggered GBK rejected: %v", err)
		}
	})
	t.Run("allowed on bounded", func(t *testing.T) {
		p := NewPipeline()
		col := Create(p, []any{KV{Key: "k", Value: "v"}})
		GroupByKey(p, col)
		if err := p.Validate(); err != nil {
			t.Errorf("bounded GBK rejected: %v", err)
		}
	})
}

func TestKafkaReadWriteConstruction(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p := NewPipeline()
	raw := KafkaRead(p, b, "in")
	if raw.Bounded() {
		t.Error("KafkaRead collection should be unbounded")
	}
	if raw.Coder().Name() != "kafkarecord" {
		t.Errorf("KafkaRead coder = %q", raw.Coder().Name())
	}
	kvs := WithoutMetadata(p, raw)
	if kvs.Coder().Name() != "kv<bytes,bytes>" {
		t.Errorf("WithoutMetadata coder = %q", kvs.Coder().Name())
	}
	vals := Values(p, kvs)
	if vals.Coder().Name() != "bytes" {
		t.Errorf("Values coder = %q", vals.Coder().Name())
	}
	KafkaWrite(p, b, "out", vals, broker.ProducerConfig{})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// The pipeline has 4 transforms: read, withoutMetadata, values, write.
	if got := len(p.Transforms()); got != 4 {
		t.Errorf("transforms = %d, want 4", got)
	}
}

func TestKafkaConstructionErrors(t *testing.T) {
	p := NewPipeline()
	KafkaRead(p, nil, "")
	if p.Err() == nil {
		t.Error("nil broker accepted")
	}
	p2 := NewPipeline()
	KafkaWrite(p2, nil, "", PCollection{}, broker.ProducerConfig{})
	if p2.Err() == nil {
		t.Error("invalid KafkaWrite accepted")
	}
}

func TestPlanRendersBeamPipeline(t *testing.T) {
	b := broker.New()
	if err := b.CreateTopic("in", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("out", broker.TopicConfig{Partitions: 1}); err != nil {
		t.Fatal(err)
	}
	p := NewPipeline()
	vals := Values(p, WithoutMetadata(p, KafkaRead(p, b, "in")))
	grep := Filter(p, "grep", func(v any) (bool, error) {
		return strings.Contains(string(v.([]byte)), "test"), nil
	}, vals)
	KafkaWrite(p, b, "out", grep, broker.ProducerConfig{})

	g, err := p.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 5 {
		t.Errorf("plan nodes = %d, want 5", g.Len())
	}
	text := g.String()
	for _, want := range []string{"KafkaIO.Read in", "WithoutMetadata", "Values", "grep", "KafkaIO.Write out"} {
		if !strings.Contains(text, want) {
			t.Errorf("plan missing %q:\n%s", want, text)
		}
	}
}

func TestWindowAssignment(t *testing.T) {
	ts := time.Date(2026, 6, 11, 12, 0, 0, 500_000_000, time.UTC)
	t.Run("global", func(t *testing.T) {
		ws := (GlobalWindows{}).AssignWindows(ts)
		if len(ws) != 1 {
			t.Fatalf("global windows = %d, want 1", len(ws))
		}
		if ws[0].Key() != "global" {
			t.Errorf("window key = %q", ws[0].Key())
		}
	})
	t.Run("fixed", func(t *testing.T) {
		fn := FixedWindows{Size: time.Second}
		ws := fn.AssignWindows(ts)
		if len(ws) != 1 {
			t.Fatalf("fixed windows = %d, want 1", len(ws))
		}
		w := ws[0].(IntervalWindow)
		if !w.Start.Equal(ts.Truncate(time.Second)) {
			t.Errorf("window start = %v", w.Start)
		}
		if w.End.Sub(w.Start) != time.Second {
			t.Errorf("window size = %v", w.End.Sub(w.Start))
		}
		if !ws[0].MaxTimestamp().Before(w.End) {
			t.Error("MaxTimestamp not inside window")
		}
	})
	t.Run("fixed zero size degrades to global", func(t *testing.T) {
		ws := (FixedWindows{}).AssignWindows(ts)
		if ws[0].Key() != "global" {
			t.Errorf("zero-size fixed windows = %v", ws[0].Key())
		}
	})
	t.Run("same second same window", func(t *testing.T) {
		fn := FixedWindows{Size: time.Second}
		a := fn.AssignWindows(ts)[0]
		b := fn.AssignWindows(ts.Add(100 * time.Millisecond))[0]
		if a.Key() != b.Key() {
			t.Error("timestamps in same interval assigned different windows")
		}
	})
}

func TestTransformKindStrings(t *testing.T) {
	kinds := map[TransformKind]string{
		KindCreate:     "Create",
		KindParDo:      "ParDo",
		KindFlatten:    "Flatten",
		KindGroupByKey: "GroupByKey",
		KindWindowInto: "Window.Into",
		KindKafkaRead:  "KafkaIO.Read",
		KindKafkaWrite: "KafkaIO.Write",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if TransformKind(99).String() != "TransformKind(99)" {
		t.Error("unknown kind string")
	}
}
