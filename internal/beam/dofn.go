package beam

import (
	"fmt"
	"time"
)

// KV is a key-value element, the input type of GroupByKey.
type KV struct {
	Key   any
	Value any
}

// Grouped is the output element type of GroupByKey: a key with all
// values collected for it within one window.
type Grouped struct {
	Key    any
	Values []any
	// Window is the pane's window, carried with the element so
	// downstream transforms can read window bounds even on engine
	// runners, where coder boundaries erase the flow context. Nil means
	// the global window.
	Window Window
}

// Context carries per-element runtime information into a DoFn.
type Context struct {
	// Timestamp is the element's event timestamp.
	Timestamp time.Time
	// Window is the element's window.
	Window Window
}

// Emitter receives elements produced by a DoFn. It reports an error when
// the runner is shutting down; DoFns must stop and return it.
type Emitter func(elem any) error

// DoFn is element-by-element processing logic, the user-facing unit of a
// ParDo (Section II-A of the paper).
type DoFn interface {
	// ProcessElement handles one element, emitting zero or more.
	ProcessElement(ctx Context, elem any, emit Emitter) error
}

// Lifecycle hooks a DoFn may additionally implement; runners call them
// around bundles, mirroring the Beam model.
type (
	// Setupper is called once per DoFn instance before processing.
	Setupper interface{ Setup() error }
	// Teardowner is called once per DoFn instance after processing.
	Teardowner interface{ Teardown() error }
)

// DoFnFunc adapts a function to DoFn.
type DoFnFunc func(ctx Context, elem any, emit Emitter) error

// ProcessElement calls the function.
func (f DoFnFunc) ProcessElement(ctx Context, elem any, emit Emitter) error {
	return f(ctx, elem, emit)
}

// MapElements applies fn to every element.
func MapElements(p *Pipeline, name string, fn func(any) (any, error), in PCollection, opts ...Option) PCollection {
	if fn == nil {
		p.fail(fmt.Errorf("beam: MapElements %q: nil function", name))
		return in
	}
	return ParDo(p, name, DoFnFunc(func(ctx Context, elem any, emit Emitter) error {
		out, err := fn(elem)
		if err != nil {
			return err
		}
		return emit(out)
	}), in, opts...)
}

// Filter keeps elements matching pred.
func Filter(p *Pipeline, name string, pred func(any) (bool, error), in PCollection, opts ...Option) PCollection {
	if pred == nil {
		p.fail(fmt.Errorf("beam: Filter %q: nil predicate", name))
		return in
	}
	return ParDo(p, name, DoFnFunc(func(ctx Context, elem any, emit Emitter) error {
		ok, err := pred(elem)
		if err != nil {
			return err
		}
		if ok {
			return emit(elem)
		}
		return nil
	}), in, opts...)
}

// WithKeys converts a collection into KV pairs using fn for the key.
func WithKeys(p *Pipeline, name string, fn func(any) (any, error), in PCollection) PCollection {
	if fn == nil {
		p.fail(fmt.Errorf("beam: WithKeys %q: nil function", name))
		return in
	}
	return ParDo(p, name, DoFnFunc(func(ctx Context, elem any, emit Emitter) error {
		key, err := fn(elem)
		if err != nil {
			return err
		}
		return emit(KV{Key: key, Value: elem})
	}), in, WithCoder(KVCoder{Key: inferScalarCoder(), Value: in.Coder()}))
}

// Values drops the keys of a KV collection, the Values.create() step the
// paper identifies in the Beam execution plan (Figure 13).
func Values(p *Pipeline, in PCollection) PCollection {
	valueCoder := Coder(BytesCoder{})
	if kvc, ok := in.Coder().(KVCoder); ok {
		valueCoder = kvc.Value
	}
	return ParDo(p, "Values", DoFnFunc(func(ctx Context, elem any, emit Emitter) error {
		kv, ok := elem.(KV)
		if !ok {
			return fmt.Errorf("beam: Values: element %T is not a KV", elem)
		}
		return emit(kv.Value)
	}), in, WithCoder(valueCoder))
}

// Keys drops the values of a KV collection.
func Keys(p *Pipeline, in PCollection) PCollection {
	keyCoder := Coder(BytesCoder{})
	if kvc, ok := in.Coder().(KVCoder); ok {
		keyCoder = kvc.Key
	}
	return ParDo(p, "Keys", DoFnFunc(func(ctx Context, elem any, emit Emitter) error {
		kv, ok := elem.(KV)
		if !ok {
			return fmt.Errorf("beam: Keys: element %T is not a KV", elem)
		}
		return emit(kv.Key)
	}), in, WithCoder(keyCoder))
}

// KeyString canonicalizes a GroupByKey key for state lookup. Runners
// use it to agree on grouping semantics across engines.
func KeyString(key any) (string, error) {
	switch k := key.(type) {
	case string:
		return k, nil
	case []byte:
		return string(k), nil
	case int:
		return fmt.Sprintf("i%d", k), nil
	case int64:
		return fmt.Sprintf("i%d", k), nil
	default:
		return "", fmt.Errorf("beam: unsupported GroupByKey key type %T", key)
	}
}

func inferScalarCoder() Coder { return StringUTF8Coder{} }

// inferCoder guesses a coder from sample values; Create uses it when no
// explicit coder is given.
func inferCoder(values []any) Coder {
	for _, v := range values {
		switch v.(type) {
		case []byte:
			return BytesCoder{}
		case string:
			return StringUTF8Coder{}
		case int, int64:
			return VarIntCoder{}
		case KV:
			return KVCoder{Key: StringUTF8Coder{}, Value: StringUTF8Coder{}}
		}
	}
	return BytesCoder{}
}
