package simcost

import (
	"math"
	"testing"
	"time"
)

func TestNilAndDisabledSimulatorChargesNothing(t *testing.T) {
	var nilSim *Simulator
	m := nilSim.NewMeter()
	m.Charge(time.Second)
	m.Flush()
	if got := m.Charged(); got != 0 {
		t.Errorf("nil simulator charged %v, want 0", got)
	}

	d := Disabled()
	md := d.NewMeter()
	md.Charge(time.Second)
	md.Flush()
	if got := md.Charged(); got != 0 {
		t.Errorf("disabled simulator charged %v, want 0", got)
	}
	if d.Multiplier() != 0 {
		t.Errorf("disabled multiplier = %v, want 0", d.Multiplier())
	}
}

func TestNilMeterIsSafe(t *testing.T) {
	var m *Meter
	m.Charge(time.Second) // must not panic
	m.Flush()
	if m.Charged() != 0 {
		t.Error("nil meter charged time")
	}
}

func TestMeterAccumulatesAndFlushes(t *testing.T) {
	s := New(1.0)
	m := s.NewMeter()
	start := time.Now()
	m.ChargeN(10*time.Microsecond, 100) // 1ms total
	m.Flush()
	elapsed := time.Since(start)
	if got := m.Charged(); got != time.Millisecond {
		t.Errorf("charged %v, want 1ms", got)
	}
	if elapsed < 900*time.Microsecond {
		t.Errorf("elapsed %v, want >= ~1ms", elapsed)
	}
}

func TestMeterMultiplierScalesCharges(t *testing.T) {
	s := New(2.0)
	m := s.NewMeter()
	m.Charge(time.Millisecond)
	m.Flush()
	if got := m.Charged(); got != 2*time.Millisecond {
		t.Errorf("charged %v, want 2ms", got)
	}
}

func TestChargeNNonPositive(t *testing.T) {
	s := New(1.0)
	m := s.NewMeter()
	m.ChargeN(time.Second, 0)
	m.ChargeN(time.Second, -5)
	m.Charge(-time.Second)
	m.Flush()
	if got := m.Charged(); got != 0 {
		t.Errorf("charged %v, want 0", got)
	}
}

func TestLargeChargeUsesSleepPath(t *testing.T) {
	s := New(1.0)
	m := s.NewMeter()
	start := time.Now()
	m.Charge(5 * time.Millisecond)
	m.Flush()
	elapsed := time.Since(start)
	if elapsed < 4*time.Millisecond {
		t.Errorf("elapsed %v, want >= ~5ms", elapsed)
	}
}

func TestRunSeedDeterministicAndSensitive(t *testing.T) {
	a := RunSeed("flink", "grep", "native", "1", "0")
	b := RunSeed("flink", "grep", "native", "1", "0")
	if a != b {
		t.Error("RunSeed not deterministic")
	}
	c := RunSeed("flink", "grep", "native", "1", "1")
	if a == c {
		t.Error("RunSeed insensitive to run index")
	}
	// Part boundaries must matter: ("ab","c") != ("a","bc").
	if RunSeed("ab", "c") == RunSeed("a", "bc") {
		t.Error("RunSeed ignores part boundaries")
	}
}

func TestNoiseFactorDeterministic(t *testing.T) {
	p := DefaultNoise()
	if p.Factor(42) != p.Factor(42) {
		t.Error("noise factor not deterministic for equal seeds")
	}
}

func TestNoiseFactorDistribution(t *testing.T) {
	p := DefaultNoise()
	const n = 5000
	var (
		sum    float64
		spikes int
	)
	for i := range uint64(n) {
		f := p.Factor(i)
		if f < 0.5 || f > p.SpikeCap {
			t.Fatalf("factor %v outside [0.5, %v]", f, p.SpikeCap)
		}
		if f > 1.4 {
			spikes++
		}
		sum += f
	}
	mean := sum / n
	if mean < 0.95 || mean > 1.35 {
		t.Errorf("noise mean %v outside plausible range", mean)
	}
	spikeRate := float64(spikes) / n
	if spikeRate < 0.01 || spikeRate > 0.15 {
		t.Errorf("spike rate %v outside [0.01, 0.15]", spikeRate)
	}
}

func TestDefaultCostsArePositive(t *testing.T) {
	c := DefaultCosts()
	checks := map[string]time.Duration{
		"BrokerProduceBatch":     c.BrokerProduceBatch,
		"BrokerProducePerRecord": c.BrokerProducePerRecord,
		"BrokerFetchBatch":       c.BrokerFetchBatch,
		"BrokerFetchPerRecord":   c.BrokerFetchPerRecord,
		"NetworkHopPerRecord":    c.NetworkHopPerRecord,
		"CoderPerRecord":         c.CoderPerRecord,
		"BeamDoFnPerRecord":      c.BeamDoFnPerRecord,
		"SparkBatch":             c.SparkBatch,
		"SparkTaskLaunch":        c.SparkTaskLaunch,
		"BufferServerPublish":    c.BufferServerPublish,
		"BufferServerPerRecord":  c.BufferServerPerRecord,
		"ProducerSyncSend":       c.ProducerSyncSend,
		"YarnContainerStart":     c.YarnContainerStart,
		"EngineJobStart":         c.EngineJobStart,
		"Checkpoint":             c.Checkpoint,
	}
	for name, d := range checks {
		if d <= 0 {
			t.Errorf("DefaultCosts().%s = %v, want > 0", name, d)
		}
	}
	if ZeroCosts() != (Costs{}) {
		t.Error("ZeroCosts must be the zero value")
	}
}

func TestNoiseMeanCloseToOneWithoutSpikes(t *testing.T) {
	p := DefaultNoise()
	p.SpikeProb = 0
	const n = 4000
	var sum float64
	for i := range uint64(n) {
		sum += p.Factor(i + 1_000_000)
	}
	mean := sum / n
	if math.Abs(mean-1.0) > 0.05 {
		t.Errorf("spike-free noise mean %v, want ~1.0", mean)
	}
}
