package simcost

import "time"

// Costs holds the calibrated per-path charges. Every constant models a
// cost the corresponding physical system pays; the doc comment on each
// field names the paper observation it supports. Durations are per call
// unless the name says PerRecord/PerByte.
type Costs struct {
	// BrokerProduceBatch is the broker-side cost of one produce request
	// (network round trip + log append), independent of batch size.
	BrokerProduceBatch time.Duration
	// BrokerProducePerRecord is the marginal cost per record in a
	// produce request.
	BrokerProducePerRecord time.Duration
	// BrokerFetchBatch is the cost of one fetch request.
	BrokerFetchBatch time.Duration
	// BrokerFetchPerRecord is the marginal per-record fetch cost.
	BrokerFetchPerRecord time.Duration

	// NetworkHopPerRecord is the per-record cost of crossing a task
	// boundary (serialize + frame + hand over). Chained Flink operators
	// avoid it entirely — the optimization Section II-B describes.
	NetworkHopPerRecord time.Duration

	// CoderPerRecord is the extra per-record cost of a Beam coder
	// encode or decode at an operator boundary, on top of the real byte
	// copy performed by the coder. Beam-on-Flink pays this at every one
	// of the ~6 boundaries in Figure 13.
	CoderPerRecord time.Duration

	// BeamDoFnPerRecord is the per-element overhead of dispatching
	// through the Beam DoFn machinery (WindowedValue wrapping, interface
	// dispatch, emitter indirection) compared to a native lambda.
	BeamDoFnPerRecord time.Duration

	// SparkBatch is the fixed cost of scheduling one micro-batch
	// (job/stage bookkeeping in the driver).
	SparkBatch time.Duration
	// SparkTaskLaunch is the cost of launching one task on an executor
	// for one partition of one batch.
	SparkTaskLaunch time.Duration
	// SparkShufflePerRecord is the per-record cost of a shuffle
	// (serialize, spill to shuffle files, fetch, deserialize). The Beam
	// runner's redistribution at parallelism 2 pays it, which is why
	// the paper measures Beam-on-Spark running markedly slower at P2
	// for cheap queries (Figures 6 and 9).
	SparkShufflePerRecord time.Duration

	// BufferServerPublish is the cost of one publish call to the Apex
	// buffer server. The native engine publishes once per streaming
	// window batch; the Beam runner publishes per tuple — the asymmetry
	// behind the paper's 30–58x Apex slowdowns (Figure 11).
	BufferServerPublish time.Duration
	// BufferServerPerRecord is the marginal per-record cost inside a
	// publish call.
	BufferServerPerRecord time.Duration

	// ProducerSyncSend is the cost of a synchronous, unbatched send to
	// the broker (acks=all, no linger) as performed by the Beam-on-Apex
	// sink for every output record.
	ProducerSyncSend time.Duration

	// YarnContainerStart is the one-off cost of allocating and starting
	// a YARN container.
	YarnContainerStart time.Duration
	// EngineJobStart is the one-off job submission/deployment cost for
	// a streaming job on any engine.
	EngineJobStart time.Duration
	// Checkpoint is the cost of persisting one operator checkpoint at a
	// streaming-window boundary (Apex checkpoints into HDFS).
	Checkpoint time.Duration
}

// DefaultCosts returns the calibration used for all reported experiments.
//
// The absolute values are chosen so that a 50k-record run finishes in
// tens of milliseconds to a few seconds on commodity hardware while the
// *ratios* between the twelve setups match the paper's Figures 6–9 and 11
// (see EXPERIMENTS.md for the measured comparison).
func DefaultCosts() Costs {
	return Costs{
		BrokerProduceBatch:     60 * time.Microsecond,
		BrokerProducePerRecord: 60 * time.Nanosecond,
		BrokerFetchBatch:       40 * time.Microsecond,
		BrokerFetchPerRecord:   400 * time.Nanosecond,

		NetworkHopPerRecord: 4 * time.Microsecond,
		CoderPerRecord:      200 * time.Nanosecond,
		BeamDoFnPerRecord:   250 * time.Nanosecond,

		SparkBatch:            1500 * time.Microsecond,
		SparkTaskLaunch:       350 * time.Microsecond,
		SparkShufflePerRecord: 2500 * time.Nanosecond,

		BufferServerPublish:   18 * time.Microsecond,
		BufferServerPerRecord: 80 * time.Nanosecond,

		ProducerSyncSend: 9 * time.Microsecond,

		YarnContainerStart: 3 * time.Millisecond,
		EngineJobStart:     5 * time.Millisecond,
		Checkpoint:         300 * time.Microsecond,
	}
}

// ZeroCosts returns a Costs with every charge set to zero, for functional
// tests that only care about data correctness.
func ZeroCosts() Costs {
	return Costs{}
}
