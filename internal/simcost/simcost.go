// Package simcost models the latencies a physical streaming cluster pays
// but an in-process simulator does not: network hops between tasks,
// serialization to the wire, broker round trips, and task scheduling.
//
// The engines in this repository execute real query code over real bytes;
// simcost adds calibrated time charges at the places where the systems in
// Hesse et al. (ICDCS 2019) pay for I/O and coordination. The *mechanism*
// differences between the native engines and the Apache-Beam-style runners
// (batched vs. per-tuple emission, chained vs. per-operator hops) combined
// with these charges reproduce the relative results of the paper; see
// DESIGN.md Section 6.
//
// Charges are accumulated per goroutine in a Meter and realized as a
// busy-wait (small amounts) or sleep+spin (large amounts), so the measured
// wall-clock execution times behave like real processing time.
package simcost

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
	"time"
)

const (
	// _flushThreshold is the amount of accrued charge at which a Meter
	// converts the accrual into real elapsed time. Small enough to keep
	// time flowing smoothly, large enough that the accounting overhead
	// is negligible next to the charge itself.
	_flushThreshold = 100 * time.Microsecond

	// _sleepCutover is the charge size above which the Meter sleeps for
	// the bulk of the duration instead of spinning, to avoid burning a
	// core for milliseconds at a time.
	_sleepCutover = 2 * time.Millisecond

	// _sleepSlack is the tail of a large charge that is spun rather than
	// slept, compensating for the OS timer granularity.
	_sleepSlack = 250 * time.Microsecond
)

// Simulator applies time charges scaled by a per-run noise multiplier.
// A nil *Simulator is valid and charges nothing, so unit tests that do
// not care about timing can pass nil throughout.
type Simulator struct {
	multiplier float64
	disabled   bool
}

// New returns a Simulator that realizes charges scaled by multiplier.
// A multiplier of 1.0 charges the calibrated durations exactly.
func New(multiplier float64) *Simulator {
	return &Simulator{multiplier: multiplier}
}

// Disabled returns a Simulator that ignores all charges. Useful for
// functional tests where wall-clock time is irrelevant.
func Disabled() *Simulator {
	return &Simulator{disabled: true}
}

// Multiplier reports the configured noise multiplier (0 when disabled).
func (s *Simulator) Multiplier() float64 {
	if s == nil || s.disabled {
		return 0
	}
	return s.multiplier
}

// NewMeter returns a fresh accumulator for one goroutine. Meters are not
// safe for concurrent use; every task/operator goroutine owns its own.
func (s *Simulator) NewMeter() *Meter {
	return &Meter{sim: s}
}

// Meter accrues charges for a single goroutine and converts them into
// elapsed time once they cross a flush threshold.
type Meter struct {
	sim     *Simulator
	accrued time.Duration
	charged time.Duration
}

// Charge accrues a single charge of duration d.
func (m *Meter) Charge(d time.Duration) {
	if m == nil || m.sim == nil || m.sim.disabled || d <= 0 {
		return
	}
	m.accrued += time.Duration(float64(d) * m.sim.multiplier)
	if m.accrued >= _flushThreshold {
		m.Flush()
	}
}

// ChargeN accrues n identical charges of duration d (amortized batch APIs).
func (m *Meter) ChargeN(d time.Duration, n int) {
	if n <= 0 {
		return
	}
	m.Charge(time.Duration(int64(d) * int64(n)))
}

// Flush realizes any accrued charge as elapsed time immediately.
func (m *Meter) Flush() {
	if m == nil || m.accrued <= 0 {
		return
	}
	d := m.accrued
	m.accrued = 0
	m.charged += d
	elapse(d)
}

// Charged reports the total time this meter has realized, for tests.
func (m *Meter) Charged() time.Duration {
	if m == nil {
		return 0
	}
	return m.charged
}

// elapse makes d of wall-clock time pass: sleep for the bulk of large
// durations, busy-wait for precision on the remainder.
func elapse(d time.Duration) {
	if d <= 0 {
		return
	}
	if d >= _sleepCutover {
		time.Sleep(d - _sleepSlack)
	}
	deadline := time.Now().Add(remainderAfterSleep(d))
	for time.Now().Before(deadline) {
		// spin
	}
}

// remainderAfterSleep returns how much of d should be spun after the
// sleeping portion of elapse has completed.
func remainderAfterSleep(d time.Duration) time.Duration {
	if d >= _sleepCutover {
		return _sleepSlack
	}
	return d
}

// RunSeed derives a deterministic 64-bit seed from the identifying parts
// of a benchmark run (system, query, SDK kind, parallelism, run index...).
func RunSeed(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		_, _ = h.Write([]byte(p))
		_, _ = h.Write([]byte{0})
	}
	return h.Sum64()
}

// NoiseParams controls the run-to-run noise process. The defaults
// reproduce the relative standard deviations of Figure 10 and the
// heavy-tailed outliers of Table III in the paper.
type NoiseParams struct {
	// Sigma is the log-stddev of the lognormal body.
	Sigma float64
	// SpikeProb is the probability that a run suffers an environmental
	// spike (JIT warmup, GC pause, noisy neighbour in the paper's VMs).
	SpikeProb float64
	// SpikeScale scales the exponential tail of a spike.
	SpikeScale float64
	// SpikeCap bounds the total multiplier.
	SpikeCap float64
}

// DefaultNoise returns the calibrated noise parameters.
func DefaultNoise() NoiseParams {
	return NoiseParams{
		Sigma:      0.05,
		SpikeProb:  0.07,
		SpikeScale: 1.1,
		SpikeCap:   7.0,
	}
}

// Factor draws the noise multiplier for the run identified by seed:
// a lognormal body with a rare additive heavy-tail spike.
func (p NoiseParams) Factor(seed uint64) float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	f := math.Exp(p.Sigma * rng.NormFloat64())
	if rng.Float64() < p.SpikeProb {
		f *= 1.5 + p.SpikeScale*rng.ExpFloat64()
	}
	if f > p.SpikeCap {
		f = p.SpikeCap
	}
	if f < 0.5 {
		f = 0.5
	}
	return f
}
