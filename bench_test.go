// Benchmarks regenerating every table and figure of the paper's
// evaluation (Hesse et al., ICDCS 2019, Section III). One benchmark per
// artifact:
//
//	Figure 6-9   BenchmarkFig6Identity .. BenchmarkFig9Grep
//	Figure 10    BenchmarkFig10RelStdDev
//	Figure 11    BenchmarkFig11Slowdown
//	Figure 12/13 BenchmarkFig12NativePlan / BenchmarkFig13BeamPlan
//	Table II     BenchmarkTableIIDatasetSelectivity
//	Table III    BenchmarkTableIIIFlinkIdentityRuns
//
// Each iteration of an execution benchmark performs one complete
// benchmark run (ingestion, execution on a fresh cluster, result
// calculation); the reported exec-s/op metric is the paper's execution
// time (output-topic LogAppendTime span). Benchmarks default to a
// reduced workload; set BEAMBENCH_RECORDS to raise it (the slowdown
// factors are per-record-dominated and scale-invariant).
//
// Ablation benchmarks isolate the design choices DESIGN.md Section 6
// identifies as load-bearing: Flink operator chaining, Apex buffer-
// server emit mode, and Spark micro-batch sizing.
package beambench_test

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"beambench/internal/aol"
	"beambench/internal/apex"
	"beambench/internal/beam"
	"beambench/internal/beam/runner/flinkrunner"
	_ "beambench/internal/beam/runners" // register the bundled runners
	"beambench/internal/broker"
	"beambench/internal/flink"
	"beambench/internal/harness"
	"beambench/internal/metrics"
	"beambench/internal/obs"
	"beambench/internal/queries"
	"beambench/internal/simcost"
	"beambench/internal/spark"
	"beambench/internal/stats"
	"beambench/internal/yarn"
)

// benchRecords returns the workload size for execution benchmarks.
func benchRecords() int {
	if s := os.Getenv("BEAMBENCH_RECORDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 5_000
}

// newBenchRunner builds a harness runner with noise disabled so the
// benchmark framework's own statistics stay meaningful.
func newBenchRunner(b *testing.B) *harness.Runner {
	b.Helper()
	r, err := harness.New(harness.Config{
		Records:      benchRecords(),
		Runs:         1,
		DisableNoise: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// benchSetup runs one harness setup per iteration and reports the
// paper's execution-time metric.
func benchSetup(b *testing.B, r *harness.Runner, setup harness.Setup) {
	b.Helper()
	var totalExec float64
	for i := 0; b.Loop(); i++ {
		res, err := r.RunSingle(setup, i)
		if err != nil {
			b.Fatal(err)
		}
		totalExec += res.ExecutionTime.Seconds()
	}
	b.ReportMetric(totalExec/float64(b.N), "exec-s/op")
}

// benchFigure runs the twelve-setup matrix of one query as
// sub-benchmarks, regenerating one of Figures 6-9.
func benchFigure(b *testing.B, q queries.Query) {
	r := newBenchRunner(b)
	for _, sys := range harness.Systems() {
		for _, api := range harness.APIs() {
			for _, p := range []int{1, 2} {
				setup := harness.Setup{System: sys, API: api, Query: q, Parallelism: p}
				b.Run(setup.Label(), func(b *testing.B) {
					benchSetup(b, r, setup)
				})
			}
		}
	}
}

// BenchmarkMatrixWallClock measures the end-to-end wall-clock time of
// the full 4-query x 12-setup matrix (one run per cell) sequentially and
// with one worker per CPU. The per-op time is the whole-matrix latency;
// the ratio between the two sub-benchmarks is the speedup the concurrent
// scheduler buys on this machine.
func BenchmarkMatrixWallClock(b *testing.B) {
	records := max(benchRecords()/5, 500)
	counts := []int{1}
	if n := harness.DefaultWorkers(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r, err := harness.New(harness.Config{
				Records:      records,
				Runs:         1,
				DisableNoise: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			for b.Loop() {
				rep, err := r.RunMatrix(context.Background(), queries.All(), workers)
				if err != nil {
					b.Fatal(err)
				}
				if want := len(queries.All()) * 12; len(rep.Cells) != want {
					b.Fatalf("matrix produced %d cells, want %d", len(rep.Cells), want)
				}
			}
		})
	}
}

func BenchmarkFig6Identity(b *testing.B)   { benchFigure(b, queries.Identity) }
func BenchmarkFig7Sample(b *testing.B)     { benchFigure(b, queries.Sample) }
func BenchmarkFig8Projection(b *testing.B) { benchFigure(b, queries.Projection) }
func BenchmarkFig9Grep(b *testing.B)       { benchFigure(b, queries.Grep) }

// BenchmarkFig10RelStdDev reproduces the Figure 10 metric for one
// representative system-query-SDK combination per iteration: three runs
// with the noise model enabled, summarized as a relative standard
// deviation.
func BenchmarkFig10RelStdDev(b *testing.B) {
	r, err := harness.New(harness.Config{Records: benchRecords(), Runs: 3})
	if err != nil {
		b.Fatal(err)
	}
	setup := harness.Setup{
		System: harness.SystemFlink, API: harness.APINative,
		Query: queries.Identity, Parallelism: 1,
	}
	var total float64
	for i := 0; b.Loop(); i++ {
		times := make([]float64, 0, 3)
		for run := range 3 {
			res, err := r.RunSingle(setup, i*3+run)
			if err != nil {
				b.Fatal(err)
			}
			times = append(times, res.ExecutionTime.Seconds())
		}
		total += stats.RelStdDev(times)
	}
	b.ReportMetric(total/float64(b.N), "relstddev/op")
}

// BenchmarkFig11Slowdown reports the Beam-vs-native slowdown factor per
// system and query: each iteration runs one Beam and one native
// execution at parallelism 1 and reports the ratio. The workload has a
// 20k-record floor: below that, grep's handful of matches fits in a
// single producer linger window and the native span degenerates to zero.
func BenchmarkFig11Slowdown(b *testing.B) {
	r, err := harness.New(harness.Config{
		Records:      max(benchRecords(), 20_000),
		Runs:         1,
		DisableNoise: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range harness.Systems() {
		for _, q := range queries.All() {
			b.Run(fmt.Sprintf("%s_%s", sys, q), func(b *testing.B) {
				var totalSF float64
				for i := 0; b.Loop(); i++ {
					beamRes, err := r.RunSingle(harness.Setup{System: sys, API: harness.APIBeam, Query: q, Parallelism: 1}, i)
					if err != nil {
						b.Fatal(err)
					}
					nativeRes, err := r.RunSingle(harness.Setup{System: sys, API: harness.APINative, Query: q, Parallelism: 1}, i)
					if err != nil {
						b.Fatal(err)
					}
					if nativeRes.ExecutionTime <= 0 {
						b.Fatal("native execution time is zero; raise BEAMBENCH_RECORDS")
					}
					totalSF += beamRes.ExecutionTime.Seconds() / nativeRes.ExecutionTime.Seconds()
				}
				b.ReportMetric(totalSF/float64(b.N), "slowdown/op")
			})
		}
	}
}

// BenchmarkFig12NativePlan measures constructing and rendering the
// native grep execution plan (3 nodes, paper Figure 12).
func BenchmarkFig12NativePlan(b *testing.B) {
	broker0, w := planWorkload(b)
	_ = broker0
	cluster, err := flink.NewCluster(flink.ClusterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()
	var nodes int
	for b.Loop() {
		env := flink.NewEnvironment(cluster)
		if err := queries.NativeFlink(env, w, queries.Grep); err != nil {
			b.Fatal(err)
		}
		plan, err := env.ExecutionPlan()
		if err != nil {
			b.Fatal(err)
		}
		nodes = plan.Len()
	}
	b.ReportMetric(float64(nodes), "plan-nodes")
}

// BenchmarkFig13BeamPlan measures constructing and rendering the Beam
// grep execution plan (7 nodes, paper Figure 13).
func BenchmarkFig13BeamPlan(b *testing.B) {
	_, w := planWorkload(b)
	cluster, err := flink.NewCluster(flink.ClusterConfig{})
	if err != nil {
		b.Fatal(err)
	}
	cluster.Start()
	defer cluster.Stop()
	var nodes int
	for b.Loop() {
		p, err := queries.BeamPipeline(w, queries.Grep)
		if err != nil {
			b.Fatal(err)
		}
		env, _, err := flinkrunner.Translate(p, flinkrunner.Config{Cluster: cluster})
		if err != nil {
			b.Fatal(err)
		}
		plan, err := env.ExecutionPlan()
		if err != nil {
			b.Fatal(err)
		}
		nodes = plan.Len()
	}
	b.ReportMetric(float64(nodes), "plan-nodes")
}

func planWorkload(b *testing.B) (*broker.Broker, queries.Workload) {
	b.Helper()
	br := broker.New()
	for _, topic := range []string{"input", "output"} {
		if err := br.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			b.Fatal(err)
		}
	}
	return br, queries.Workload{Broker: br, InputTopic: "input", OutputTopic: "output", Seed: 7}
}

// BenchmarkTableIIDatasetSelectivity regenerates the Table II workload
// characteristics: dataset generation plus grep/sample selectivity.
func BenchmarkTableIIDatasetSelectivity(b *testing.B) {
	n := benchRecords()
	var grepHits, sampleKept int
	for b.Loop() {
		gen, err := aol.NewGenerator(aol.Config{Records: n, Seed: 42, GrepHits: -1})
		if err != nil {
			b.Fatal(err)
		}
		grepHits, sampleKept = 0, 0
		var buf []byte
		for {
			rec, ok := gen.Next()
			if !ok {
				break
			}
			buf = rec.AppendTSV(buf[:0])
			if queries.GrepMatch(buf) {
				grepHits++
			}
			if queries.SampleKeep(buf, 7) {
				sampleKept++
			}
		}
	}
	b.ReportMetric(100*float64(grepHits)/float64(n), "grep-%")
	b.ReportMetric(100*float64(sampleKept)/float64(n), "sample-%")
}

// BenchmarkTableIIIFlinkIdentityRuns reproduces the Table III cell: one
// native Flink identity run per iteration, with the run-noise model
// enabled so outlier runs appear as they do in the paper.
func BenchmarkTableIIIFlinkIdentityRuns(b *testing.B) {
	r, err := harness.New(harness.Config{Records: benchRecords(), Runs: 1})
	if err != nil {
		b.Fatal(err)
	}
	setup := harness.Setup{
		System: harness.SystemFlink, API: harness.APINative,
		Query: queries.Identity, Parallelism: 1,
	}
	var total float64
	for i := 0; b.Loop(); i++ {
		res, err := r.RunSingle(setup, i)
		if err != nil {
			b.Fatal(err)
		}
		total += res.ExecutionTime.Seconds()
	}
	b.ReportMetric(total/float64(b.N), "exec-s/op")
}

// BenchmarkFusionOverhead compares the fused and unfused translation
// modes of the shared optimizer (internal/beam/graphx) per runner, on
// the two pipelines that bracket the paper's output-volume spectrum:
// Identity (100% output) and Grep (~0.3% output). Each iteration runs
// the Beam pipeline through the named registered runner on a fresh
// workload; the reported ns/record metric is the output-topic
// LogAppendTime span divided by the input record count — the per-record
// price of the abstraction layer in each mode. The direct runner is
// excluded: it charges no modeled costs, so its span would be raw
// in-process wall clock — scheduler noise, not an abstraction cost.
func BenchmarkFusionOverhead(b *testing.B) {
	for _, runnerName := range []string{"apex", "flink", "spark"} {
		for _, q := range []queries.Query{queries.Identity, queries.Grep} {
			for _, mode := range []beam.FusionMode{beam.FusionOff, beam.FusionOn} {
				b.Run(fmt.Sprintf("%s/%s/fusion=%s", runnerName, q, mode), func(b *testing.B) {
					runner, err := beam.GetRunner(runnerName)
					if err != nil {
						b.Fatal(err)
					}
					costs := simcost.DefaultCosts()
					var totalSpan float64
					for b.Loop() {
						w, sim := ablationWorkload(b)
						p, err := queries.BeamPipeline(w, q)
						if err != nil {
							b.Fatal(err)
						}
						if _, err := runner.Run(context.Background(), p, beam.Options{
							Fusion: mode,
							Costs:  &costs,
							Sim:    sim,
						}); err != nil {
							b.Fatal(err)
						}
						totalSpan += execSpan(b, w)
					}
					b.ReportMetric(totalSpan/float64(b.N)/float64(benchRecords())*1e9, "ns/record")
				})
			}
		}
	}
}

// --- Ablation benchmarks -------------------------------------------------

// BenchmarkAblationFlinkChaining isolates operator chaining, the
// mechanism Figure 12/13 hinges on: the same native pipeline with
// chaining enabled vs. disabled.
func BenchmarkAblationFlinkChaining(b *testing.B) {
	for _, chained := range []bool{true, false} {
		name := "chained"
		if !chained {
			name = "unchained"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for b.Loop() {
				w, sim := ablationWorkload(b)
				cluster, err := flink.NewCluster(flink.ClusterConfig{Costs: simcost.DefaultCosts(), Sim: sim})
				if err != nil {
					b.Fatal(err)
				}
				cluster.Start()
				env := flink.NewEnvironment(cluster)
				if !chained {
					env.DisableOperatorChaining()
				}
				if err := queries.NativeFlink(env, w, queries.Identity); err != nil {
					b.Fatal(err)
				}
				if _, err := env.Execute("ablation"); err != nil {
					b.Fatal(err)
				}
				cluster.Stop()
				total += execSpan(b, w)
			}
			b.ReportMetric(total/float64(b.N), "exec-s/op")
		})
	}
}

// BenchmarkAblationApexEmitMode isolates the buffer-server emit mode
// behind the paper's Apex results: the same native identity application
// with windowed vs. per-tuple publishing on the output stream.
func BenchmarkAblationApexEmitMode(b *testing.B) {
	for _, perTuple := range []bool{false, true} {
		name := "windowed"
		if perTuple {
			name = "pertuple"
		}
		b.Run(name, func(b *testing.B) {
			var total float64
			for b.Loop() {
				w, sim := ablationWorkload(b)
				cluster, err := yarn.NewCluster(yarn.ClusterConfig{})
				if err != nil {
					b.Fatal(err)
				}
				cluster.Start()
				app, err := queries.NativeApex(w, queries.Identity)
				if err != nil {
					b.Fatal(err)
				}
				if perTuple {
					app.SetStreamPerTuple("output", true)
				}
				stram, err := apex.Launch(cluster, app, apex.LaunchConfig{Costs: simcost.DefaultCosts(), Sim: sim})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := stram.Await(); err != nil {
					b.Fatal(err)
				}
				cluster.Stop()
				total += execSpan(b, w)
			}
			b.ReportMetric(total/float64(b.N), "exec-s/op")
		})
	}
}

// BenchmarkAblationSparkBatchSize sweeps the micro-batch size cap,
// showing how batching amortizes Spark's per-batch scheduling overhead.
func BenchmarkAblationSparkBatchSize(b *testing.B) {
	for _, maxRate := range []int{500, 2_000, 10_000} {
		b.Run(fmt.Sprintf("maxPerBatch=%d", maxRate), func(b *testing.B) {
			var total float64
			for b.Loop() {
				w, sim := ablationWorkload(b)
				cluster, err := spark.NewCluster(spark.ClusterConfig{Costs: simcost.DefaultCosts(), Sim: sim})
				if err != nil {
					b.Fatal(err)
				}
				cluster.Start()
				ssc, err := spark.NewStreamingContext(cluster, spark.Config{MaxRatePerPartition: maxRate})
				if err != nil {
					b.Fatal(err)
				}
				if err := queries.NativeSpark(ssc, w, queries.Identity); err != nil {
					b.Fatal(err)
				}
				if _, err := ssc.RunBounded(); err != nil {
					b.Fatal(err)
				}
				cluster.Stop()
				total += execSpan(b, w)
			}
			b.ReportMetric(total/float64(b.N), "exec-s/op")
		})
	}
}

// ablationWorkload builds a fresh preloaded broker for one ablation run.
func ablationWorkload(b *testing.B) (queries.Workload, *simcost.Simulator) {
	b.Helper()
	sim := simcost.New(1.0)
	br := broker.New(broker.WithCosts(simcost.DefaultCosts(), sim))
	for _, topic := range []string{"input", "output"} {
		if err := br.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			b.Fatal(err)
		}
	}
	gen, err := aol.NewGenerator(aol.Config{Records: benchRecords(), Seed: 42, GrepHits: -1})
	if err != nil {
		b.Fatal(err)
	}
	producer, err := br.NewProducer(broker.ProducerConfig{})
	if err != nil {
		b.Fatal(err)
	}
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if err := producer.Send("input", nil, rec.AppendTSV(nil)); err != nil {
			b.Fatal(err)
		}
	}
	if err := producer.Close(); err != nil {
		b.Fatal(err)
	}
	return queries.Workload{Broker: br, InputTopic: "input", OutputTopic: "output", Seed: 7}, sim
}

// execSpan returns the output topic's LogAppendTime span in seconds.
func execSpan(b *testing.B, w queries.Workload) float64 {
	b.Helper()
	first, last, n, err := w.Broker.TimeSpan(w.OutputTopic)
	if err != nil {
		b.Fatal(err)
	}
	if n == 0 {
		return 0
	}
	return last.Sub(first).Seconds()
}

// BenchmarkSketchInsert measures the telemetry subsystem's hot path: one
// CKMS sketch insert per op (amortized over the insert buffer), the cost
// every latency observation pays.
func BenchmarkSketchInsert(b *testing.B) {
	s := metrics.MustSketch()
	rng := rand.New(rand.NewPCG(1, 2))
	const mask = 1<<13 - 1
	vals := make([]float64, mask+1)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ReportAllocs()
	i := 0
	for b.Loop() {
		s.Insert(vals[i&mask])
		i++
	}
	if s.Count() != int64(b.N) {
		b.Fatalf("sketch lost observations: %d != %d", s.Count(), b.N)
	}
}

// BenchmarkInstrumentationOverhead runs the identity query with the
// telemetry subsystem off, on, and on-while-scraped; the per-op delta
// against "off" is the full cost of collection (per-stage throughput
// marking in the engine hot path plus the per-record latency pairing
// in result calculation). The budget is <5% for metrics=on and <2% of
// additional wall time for metrics=serve, where the live telemetry
// plane is attached and a background scraper hammers /metrics and
// /snapshot for the whole measurement — the pull-based snapshot path
// must stay off the hot path.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	for _, api := range []harness.API{harness.APINative, harness.APIBeam} {
		for _, mode := range []string{"off", "on", "serve"} {
			b.Run(fmt.Sprintf("%s/metrics=%s", api, mode), func(b *testing.B) {
				cfg := harness.Config{
					Records:        benchRecords(),
					Runs:           1,
					DisableNoise:   true,
					CollectMetrics: mode != "off",
				}
				if mode == "serve" {
					cfg.Plane = obs.NewPlane(cfg.Records, 1)
				}
				r, err := harness.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if mode == "serve" {
					srv, err := cfg.Plane.Serve("127.0.0.1:0")
					if err != nil {
						b.Fatal(err)
					}
					defer srv.Close()
					stop := make(chan struct{})
					var wg sync.WaitGroup
					wg.Add(1)
					go func() {
						defer wg.Done()
						tr := &http.Transport{}
						defer tr.CloseIdleConnections()
						client := &http.Client{Transport: tr, Timeout: 5 * time.Second}
						for {
							select {
							case <-stop:
								return
							default:
							}
							for _, path := range []string{"/metrics", "/snapshot"} {
								resp, err := client.Get(srv.URL() + path)
								if err != nil {
									return
								}
								_, _ = io.Copy(io.Discard, resp.Body)
								resp.Body.Close()
							}
						}
					}()
					defer wg.Wait()
					defer close(stop)
				}
				setup := harness.Setup{
					System: harness.SystemFlink, API: api,
					Query: queries.Identity, Parallelism: 1,
				}
				benchSetup(b, r, setup)
			})
		}
	}
}

// BenchmarkTraceOverhead runs the identity query with run-level tracing
// off and on; the per-op delta between the two sub-benchmarks is the
// full cost of the observability subsystem (spans in the engine
// subtask/partition paths, watermark gauges, and the lag monitor's
// sampling ticker). The budget is <5% on this query, matching
// BenchmarkInstrumentationOverhead's budget for the metrics subsystem.
func BenchmarkTraceOverhead(b *testing.B) {
	for _, api := range []harness.API{harness.APINative, harness.APIBeam} {
		for _, traced := range []bool{false, true} {
			mode := "off"
			if traced {
				mode = "on"
			}
			b.Run(fmt.Sprintf("%s/trace=%s", api, mode), func(b *testing.B) {
				cfg := harness.Config{
					Records:      benchRecords(),
					Runs:         1,
					DisableNoise: true,
				}
				if traced {
					cfg.Trace = obs.NewTracer(1 << 18)
				}
				r, err := harness.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				setup := harness.Setup{
					System: harness.SystemFlink, API: api,
					Query: queries.Identity, Parallelism: 1,
				}
				benchSetup(b, r, setup)
			})
		}
	}
}
