#!/usr/bin/env bash
# lint.sh — the repo's whole lint stack, runnable locally and in CI.
#
# This file is the single source of truth for pinned tool versions, so
# CI and local runs always agree. The natural Go 1.24 home for these
# pins is a `tool` directive in go.mod; that requires adding the tool
# modules to the module graph (go.sum entries and a module download),
# which the offline build environment cannot produce. Until module
# downloads are allowed, bump versions here and nowhere else.
#
# Usage:
#   ./hack/lint.sh            # lenient: skips tools it cannot install
#   LINT_STRICT=1 ./hack/lint.sh   # CI: a missing tool is a failure
set -u

STATICCHECK_VERSION=2025.1.1
GOVULNCHECK_VERSION=v1.1.4

fail=0

step() {
  echo "==> $*"
}

step "gofmt"
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:" >&2
  echo "$unformatted" >&2
  fail=1
fi

step "go vet"
go vet ./... || fail=1

step "beamvet (repo-specific invariants: determinism, ctxleak, errwrap, locksafe, hotalloc)"
# BEAMVET_JSON=path also captures the machine-readable report (schema
# in internal/analysis/report.go); CI uploads it as an artifact.
if [ -n "${BEAMVET_JSON:-}" ]; then
  go run ./cmd/beamvet -json ./... > "$BEAMVET_JSON" || fail=1
else
  go run ./cmd/beamvet ./... || fail=1
fi

# Tools that need a module download. In the offline sandbox these are
# skipped unless already installed; CI sets LINT_STRICT=1.
run_tool() {
  name="$1" module="$2" version="$3"
  shift 3
  step "$name ($version)"
  # `go install` is idempotent and guarantees the pinned version; a
  # pre-existing $PATH binary of some other version is never trusted.
  if ! go install "$module@$version" >/dev/null 2>&1; then
    if [ "${LINT_STRICT:-0}" = "1" ]; then
      echo "$name $version could not be installed" >&2
      fail=1
    else
      echo "skipped: $name unavailable (offline?); CI enforces it" >&2
    fi
    return
  fi
  "$(go env GOPATH)/bin/$name" "$@" || fail=1
}

# SA (correctness) and S1 (simplification) classes; ST style checks are
# intentionally excluded from the gate.
run_tool staticcheck honnef.co/go/tools/cmd/staticcheck "$STATICCHECK_VERSION" \
  -checks "SA*,S1*" ./...

run_tool govulncheck golang.org/x/vuln/cmd/govulncheck "$GOVULNCHECK_VERSION" ./...

exit $fail
