// Package beambench is a from-scratch Go reproduction of "Quantitative
// Impact Evaluation of an Abstraction Layer for Data Stream Processing
// Systems" (Hesse et al., IEEE ICDCS 2019): a benchmark measuring what
// the Apache Beam abstraction layer costs on Apache Flink, Apache Spark
// Streaming and Apache Apex.
//
// The repository contains simulators for all three engines and their
// substrates (a Kafka-style broker, YARN), a Beam-style SDK, the
// StreamBench queries in native and Beam variants, and a harness that
// regenerates every figure and table of the paper's evaluation.
//
// # Queries
//
// The paper's four stateless queries — Identity, Sample (~40% seeded
// subset), Projection (first column) and Grep (~0.3% regex matches) —
// plus WindowedCount, the stateful workload the paper excluded:
// per-user-ID counts over 1-second event-time tumbling windows, emitted
// as "<window-start-unix>\t<user>\t<count>". Event time is the record's
// own query-time column, so the output set is deterministic and
// byte-identical (sorted) across systems, APIs, parallelism levels and
// ingestion modes.
//
// # Watermarks and stateful processing
//
// internal/watermark implements event-time progress in three pieces:
// generation (a per-partition/per-instance watermark of max event time
// seen minus a bounded out-of-orderness, monotonic), propagation (the
// minimum across an operator's inputs), and finalization (a source that
// meets the broker.EndOfInput contract jumps to EndOfTime, releasing
// every remaining window). Tumbling pane state on top fires (window,
// key) panes in a deterministic order — ascending window, keys first
// seen first — as soon as the watermark passes a window's end.
//
// Each engine flushes panes at its natural clock: Flink tuple-at-a-time
// (DataStream.TumblingCountWindow behind KeyBy), Spark Streaming at
// micro-batch boundaries (DStream.ReduceByKeyAndWindow, a keyed state
// path persisting across batches; RepartitionByKey reunites keys above
// parallelism 1), Apex at streaming-window boundaries (the
// TumblingCountWindow operator behind SetStreamKeyed keyed streams).
// The Beam runners all deploy the shared executable graphx.GBKState for
// GroupByKey — the Spark runner's paper-era stateful rejection
// (ErrStatefulUnsupported) is lifted. Capability gaps that remain (e.g.
// non-global windowing without an element-derived event-time extractor)
// are reported by wrapping the shared beam.ErrUnsupported sentinel, and
// the harness records such cells as skipped-with-reason instead of
// aborting the matrix.
//
// # Runner API
//
// Pipelines execute through a single interface, with engines selected
// by name from a registry (internal/beam):
//
//	import (
//	    "beambench/internal/beam"
//	    _ "beambench/internal/beam/runners" // register direct, flink, spark, apex
//	)
//
//	r, _ := beam.GetRunner("flink")
//	res, err := r.Run(ctx, pipeline, beam.Options{Parallelism: 2})
//
// beam.Options carries the runner-independent knobs (parallelism, the
// cost model, the fusion mode); beam.Result reports per-collection
// outputs (direct runner), translated engine operator counts, and
// per-operator metrics. Each runner builds and tears down a fresh
// engine cluster per run, the paper's isolation discipline.
//
// # The fusion optimizer
//
// All runners translate from the execution plan produced by the shared
// optimizer (internal/beam/graphx), which lowers a validated pipeline
// into stages and — when fusion is on — collapses maximal ParDo chains
// into single executable stages, stopping at GroupByKey, Flatten,
// WindowInto and multi-consumer boundaries. beam.Options.Fusion selects
// the mode: FusionDefault is paper-faithful (the Apex runner fuses,
// Flink and Spark emit one engine operator per primitive — the
// structural overhead of Figure 13), while FusionOn/FusionOff force one
// mode everywhere so the fused-vs-unfused cost is measurable per engine
// (BenchmarkFusionOverhead, `beambench -fusion`, `planviz -fused`).
//
// # Telemetry
//
// internal/metrics is the streaming telemetry subsystem: per-record
// event-time latency and per-stage throughput for every benchmark cell.
// The flow is broker timestamps -> collector -> report:
//
//	broker    every record carries its LogAppendTime
//	engines   operators mark per-stage throughput into the cell's
//	          metrics.Collector (threaded via beam.Options.Metrics and
//	          the engine cluster configs) while the job runs
//	harness   result calculation pairs each output record's append time
//	          with its input record's append time (the queries are
//	          deterministic, so outputs match FIFO against the surviving
//	          inputs' expected payloads — robust to parallel partitions
//	          interleaving the output topic) and feeds a CKMS
//	          biased-quantile sketch per cell
//	report    Cell.Latency (p50/p90/p99/max) and Cell.Stages, printed by
//	          `beambench -latency` and included in -json output
//
// Collection is opt-in (harness.Config.CollectMetrics) and costs under
// 5% on the identity query (BenchmarkInstrumentationOverhead).
//
// # Ingestion modes
//
// harness.Config.Ingest selects when the data sender runs relative to
// query execution. In preload mode (the default) the sender fills the
// input topic before the engine cluster launches: execution time
// measures drain throughput and event-time latency is dominated by
// queueing from time zero. In stream mode (`beambench -ingest stream
// -rate N`) the sender runs concurrently with the engine — the paper's
// Figure 5 architecture — paced at N records/second on the simulated
// clock, so the latency sketches measure processing delay under a
// controlled offered load. Every engine source terminates via a shared
// end-of-input contract (broker.EndOfInput, fed from
// queries.Workload.InputRecords / beam.Options.TargetRecords: consume
// until the topic has received its announced total) rather than
// snapshotting end offsets at startup, which is what makes the two
// modes produce identical outputs — byte-identical in order at
// parallelism 1, as an order-insensitive multiset above it (parallel
// sink tasks interleave appends into the single output partition).
//
// # Enforced invariants
//
// The cross-engine byte-identity contract is enforced at compile time
// by a repo-specific static-analysis suite, `go run ./cmd/beamvet
// ./...` (see internal/analysis): determinism in output-producing
// packages, termination contracts for runtime goroutines, and
// errors.Is-compatible sentinel wrapping. internal/goleak backs the
// goroutine invariant at runtime via TestMain in the broker, harness,
// and engine runtime packages.
//
// See README.md.
package beambench
