// Package beambench is a from-scratch Go reproduction of "Quantitative
// Impact Evaluation of an Abstraction Layer for Data Stream Processing
// Systems" (Hesse et al., IEEE ICDCS 2019): a benchmark measuring what
// the Apache Beam abstraction layer costs on Apache Flink, Apache Spark
// Streaming and Apache Apex.
//
// The repository contains simulators for all three engines and their
// substrates (a Kafka-style broker, YARN), a Beam-style SDK with one
// runner per engine, the StreamBench queries in native and Beam
// variants, and a harness that regenerates every figure and table of the
// paper's evaluation. See README.md, DESIGN.md and EXPERIMENTS.md.
package beambench
