// Quickstart: write one Beam-style pipeline and run it on the Flink
// engine through the abstraction layer.
//
// The pipeline reads search-log records from a broker topic, keeps the
// ones matching "test" and writes them back to another topic — the grep
// query of the StreamBench workload. The engine is selected by name
// from the runner registry; swap "flink" for "spark", "apex" or
// "direct" and nothing else changes.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"beambench/internal/aol"
	"beambench/internal/beam"
	_ "beambench/internal/beam/runners" // register direct, flink, spark, apex
	"beambench/internal/broker"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A broker with an input topic holding 10,000 synthetic records and
	// an empty output topic.
	b := broker.New()
	for _, topic := range []string{"searches", "matches"} {
		if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			return err
		}
	}
	gen, err := aol.NewGenerator(aol.Config{Records: 10_000, Seed: 1, GrepHits: -1})
	if err != nil {
		return err
	}
	producer, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		return err
	}
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if err := producer.Send("searches", nil, rec.AppendTSV(nil)); err != nil {
			return err
		}
	}
	if err := producer.Close(); err != nil {
		return err
	}

	// The Beam pipeline: KafkaIO.read -> withoutMetadata -> values ->
	// filter -> KafkaIO.write.
	p := beam.NewPipeline()
	values := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "searches")))
	matches := beam.Filter(p, "grep", func(elem any) (bool, error) {
		return bytes.Contains(elem.([]byte), []byte("test")), nil
	}, values)
	beam.KafkaWrite(p, b, "matches", matches, broker.ProducerConfig{})

	// Run it through the Flink runner, selected by name; the runner
	// builds (and tears down) its own engine cluster.
	runner, err := beam.GetRunner("flink")
	if err != nil {
		return err
	}
	result, err := runner.Run(context.Background(), p, beam.Options{})
	if err != nil {
		return err
	}

	count, err := b.RecordCount("matches")
	if err != nil {
		return err
	}
	fmt.Printf("quickstart: %d of 10000 records matched %q\n", count, "test")
	fmt.Printf("the job ran as %d engine operators; re-run with beam.Options{Fusion: beam.FusionOn} to fuse the ParDo chain\n",
		result.OperatorCount())
	return nil
}
