// Multirunner: the abstraction-layer promise and its price.
//
// One Beam pipeline definition (the StreamBench projection query) runs
// unchanged on four runners — direct, Flink, Spark Streaming and Apex —
// selected by name from the runner registry. The program verifies all
// four produce the same output, then prints the measured execution time
// and translated operator count per runner, so both the cost of the
// abstraction layer (cf. the paper's Figures 6-9) and the effect of the
// shared fusion optimizer are visible.
//
//	go run ./examples/multirunner
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"beambench/internal/aol"
	"beambench/internal/beam"
	_ "beambench/internal/beam/runners" // register direct, flink, spark, apex
	"beambench/internal/broker"
	"beambench/internal/queries"
	"beambench/internal/simcost"
)

const records = 20_000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	type outcome struct {
		runner    string
		outputs   int64
		span      time.Duration
		operators int
	}
	costs := simcost.DefaultCosts()
	var outcomes []outcome
	// beam.RunnerNames reports every registered runner — no switch
	// statement, no engine-specific configuration.
	for _, name := range beam.RunnerNames() {
		w, err := freshWorkload()
		if err != nil {
			return err
		}
		// The pipeline is identical for every runner — that is the point.
		pipeline, err := queries.BeamPipeline(w, queries.Projection)
		if err != nil {
			return err
		}
		runner, err := beam.GetRunner(name)
		if err != nil {
			return err
		}
		res, err := runner.Run(context.Background(), pipeline, beam.Options{
			Costs: &costs,
			Sim:   simcost.New(1.0),
		})
		if err != nil {
			return fmt.Errorf("%s runner: %w", name, err)
		}
		first, last, n, err := w.Broker.TimeSpan(w.OutputTopic)
		if err != nil {
			return err
		}
		outcomes = append(outcomes, outcome{
			runner:    name,
			outputs:   n,
			span:      last.Sub(first),
			operators: res.OperatorCount(),
		})
	}

	fmt.Printf("one pipeline, %d runners (%d input records):\n", len(outcomes), records)
	for _, o := range outcomes {
		fmt.Printf("  %-8s %6d output records   %2d engine operators   execution time %8.3fs\n",
			o.runner, o.outputs, o.operators, o.span.Seconds())
	}
	for _, o := range outcomes[1:] {
		if o.outputs != outcomes[0].outputs {
			return fmt.Errorf("runner %s produced %d records, %s produced %d",
				o.runner, o.outputs, outcomes[0].runner, outcomes[0].outputs)
		}
	}
	fmt.Println("all runners produced identical output counts — same program, different price.")
	return nil
}

// freshWorkload builds a broker preloaded with the synthetic search log.
func freshWorkload() (queries.Workload, error) {
	sim := simcost.New(1.0)
	b := broker.New(broker.WithCosts(simcost.DefaultCosts(), sim))
	for _, topic := range []string{"input", "output"} {
		if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			return queries.Workload{}, err
		}
	}
	gen, err := aol.NewGenerator(aol.Config{Records: records, Seed: 9, GrepHits: -1})
	if err != nil {
		return queries.Workload{}, err
	}
	producer, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		return queries.Workload{}, err
	}
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if err := producer.Send("input", nil, rec.AppendTSV(nil)); err != nil {
			return queries.Workload{}, err
		}
	}
	if err := producer.Close(); err != nil {
		return queries.Workload{}, err
	}
	return queries.Workload{Broker: b, InputTopic: "input", OutputTopic: "output", Seed: 7}, nil
}
