// Multirunner: the abstraction-layer promise and its price.
//
// One Beam pipeline definition (the StreamBench projection query) runs
// unchanged on four runners — direct, Flink, Spark Streaming and Apex —
// and the program verifies all four produce the same output, then prints
// the measured execution time per runner so the cost of the abstraction
// layer on each engine is visible (cf. the paper's Figures 6-9).
//
//	go run ./examples/multirunner
package main

import (
	"fmt"
	"log"
	"time"

	"beambench/internal/aol"
	"beambench/internal/beam/runner/apexrunner"
	"beambench/internal/beam/runner/direct"
	"beambench/internal/beam/runner/flinkrunner"
	"beambench/internal/beam/runner/sparkrunner"
	"beambench/internal/broker"
	"beambench/internal/flink"
	"beambench/internal/queries"
	"beambench/internal/simcost"
	"beambench/internal/spark"
	"beambench/internal/yarn"
)

const records = 20_000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	type outcome struct {
		runner  string
		outputs int64
		span    time.Duration
	}
	var outcomes []outcome
	for _, runner := range []string{"direct", "flink", "spark", "apex"} {
		w, err := freshWorkload()
		if err != nil {
			return err
		}
		if err := execute(runner, w); err != nil {
			return fmt.Errorf("%s runner: %w", runner, err)
		}
		first, last, n, err := w.Broker.TimeSpan(w.OutputTopic)
		if err != nil {
			return err
		}
		outcomes = append(outcomes, outcome{runner: runner, outputs: n, span: last.Sub(first)})
	}

	fmt.Printf("one pipeline, four runners (%d input records):\n", records)
	for _, o := range outcomes {
		fmt.Printf("  %-8s %6d output records   execution time %8.3fs\n",
			o.runner, o.outputs, o.span.Seconds())
	}
	for _, o := range outcomes[1:] {
		if o.outputs != outcomes[0].outputs {
			return fmt.Errorf("runner %s produced %d records, direct produced %d",
				o.runner, o.outputs, outcomes[0].outputs)
		}
	}
	fmt.Println("all runners produced identical output counts — same program, different price.")
	return nil
}

// freshWorkload builds a broker preloaded with the synthetic search log.
func freshWorkload() (queries.Workload, error) {
	sim := simcost.New(1.0)
	b := broker.New(broker.WithCosts(simcost.DefaultCosts(), sim))
	for _, topic := range []string{"input", "output"} {
		if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			return queries.Workload{}, err
		}
	}
	gen, err := aol.NewGenerator(aol.Config{Records: records, Seed: 9, GrepHits: -1})
	if err != nil {
		return queries.Workload{}, err
	}
	producer, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		return queries.Workload{}, err
	}
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if err := producer.Send("input", nil, rec.AppendTSV(nil)); err != nil {
			return queries.Workload{}, err
		}
	}
	if err := producer.Close(); err != nil {
		return queries.Workload{}, err
	}
	return queries.Workload{Broker: b, InputTopic: "input", OutputTopic: "output", Seed: 7}, nil
}

func execute(runner string, w queries.Workload) error {
	// The pipeline is identical for every runner — that is the point.
	pipeline, err := queries.BeamPipeline(w, queries.Projection)
	if err != nil {
		return err
	}
	costs := simcost.DefaultCosts()
	sim := simcost.New(1.0)
	switch runner {
	case "direct":
		_, err := direct.Run(pipeline)
		return err
	case "flink":
		cluster, err := flink.NewCluster(flink.ClusterConfig{Costs: costs, Sim: sim})
		if err != nil {
			return err
		}
		cluster.Start()
		defer cluster.Stop()
		_, err = flinkrunner.Run(pipeline, flinkrunner.Config{Cluster: cluster})
		return err
	case "spark":
		cluster, err := spark.NewCluster(spark.ClusterConfig{Costs: costs, Sim: sim})
		if err != nil {
			return err
		}
		cluster.Start()
		defer cluster.Stop()
		_, err = sparkrunner.Run(pipeline, sparkrunner.Config{Cluster: cluster})
		return err
	case "apex":
		cluster, err := yarn.NewCluster(yarn.ClusterConfig{})
		if err != nil {
			return err
		}
		cluster.Start()
		defer cluster.Stop()
		_, err = apexrunner.Run(pipeline, apexrunner.Config{Cluster: cluster, Costs: costs, Sim: sim})
		return err
	default:
		return fmt.Errorf("unknown runner %q", runner)
	}
}
