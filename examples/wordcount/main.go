// Wordcount: the Beam SDK beyond the stateless benchmark queries —
// GroupByKey with an aggregation trigger over an unbounded source.
//
// The pipeline tokenizes search queries from a topic, keys each word by
// itself, and groups with an AfterCount trigger (the paper notes that a
// GroupByKey over an unbounded collection requires a trigger or
// non-global windowing, Section II-A). It runs on the direct runner,
// prints the most frequent search terms, and then re-runs the stateful
// part on the Flink runner and on the Spark runner — whose keyed
// micro-batch state path lifted the paper-era capability-matrix gap
// (GroupByKey used to be rejected with ErrStatefulUnsupported).
//
//	go run ./examples/wordcount
package main

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"strings"

	"beambench/internal/aol"
	"beambench/internal/beam"
	"beambench/internal/beam/runner/direct"
	"beambench/internal/beam/runner/flinkrunner"
	"beambench/internal/beam/runner/sparkrunner"
	"beambench/internal/broker"
	"beambench/internal/flink"
	"beambench/internal/spark"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	b := broker.New()
	if err := b.CreateTopic("searches", broker.TopicConfig{Partitions: 1}); err != nil {
		return err
	}
	gen, err := aol.NewGenerator(aol.Config{Records: 5_000, Seed: 4, GrepHits: -1})
	if err != nil {
		return err
	}
	producer, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		return err
	}
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if err := producer.Send("searches", nil, []byte(rec.Query)); err != nil {
			return err
		}
	}
	if err := producer.Close(); err != nil {
		return err
	}

	p := beam.NewPipeline()
	queriesCol := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "searches")))
	words := beam.ParDo(p, "tokenize", beam.DoFnFunc(func(ctx beam.Context, elem any, emit beam.Emitter) error {
		for _, word := range strings.Fields(string(elem.([]byte))) {
			if err := emit(beam.KV{Key: word, Value: "1"}); err != nil {
				return err
			}
		}
		return nil
	}), queriesCol, beam.WithCoder(beam.KVCoder{Key: beam.StringUTF8Coder{}, Value: beam.StringUTF8Coder{}}))

	// KafkaRead is unbounded, so the GroupByKey needs a trigger.
	triggered := beam.WindowInto(p, beam.DefaultWindowing().Triggering(beam.AfterCount{N: 1000}), words)
	grouped := beam.GroupByKey(p, triggered)

	res, err := direct.Run(p)
	if err != nil {
		return err
	}

	counts := make(map[string]int)
	for _, elem := range res.Elements(grouped) {
		g := elem.(beam.Grouped)
		counts[g.Key.(string)] += len(g.Values)
	}
	type wc struct {
		word string
		n    int
	}
	ranked := make([]wc, 0, len(counts))
	for word, n := range counts {
		ranked = append(ranked, wc{word: word, n: n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].word < ranked[j].word
	})
	fmt.Println("top search terms:")
	for _, entry := range ranked[:min(10, len(ranked))] {
		fmt.Printf("  %-12s %d\n", entry.word, entry.n)
	}

	return runStatefulOnEngines(b)
}

// runStatefulOnEngines runs the same stateful pipeline on the Flink
// runner and on the Spark runner's micro-batch state path.
func runStatefulOnEngines(b *broker.Broker) error {
	build := func() (*beam.Pipeline, error) {
		if err := b.DeleteTopic("counts"); err != nil && !errors.Is(err, broker.ErrUnknownTopic) {
			return nil, err
		}
		if err := b.CreateTopic("counts", broker.TopicConfig{Partitions: 1}); err != nil {
			return nil, err
		}
		p := beam.NewPipeline()
		queriesCol := beam.Values(p, beam.WithoutMetadata(p, beam.KafkaRead(p, b, "searches")))
		words := beam.ParDo(p, "tokenize", beam.DoFnFunc(func(ctx beam.Context, elem any, emit beam.Emitter) error {
			for _, word := range strings.Fields(string(elem.([]byte))) {
				if err := emit(beam.KV{Key: word, Value: "1"}); err != nil {
					return err
				}
			}
			return nil
		}), queriesCol, beam.WithCoder(beam.KVCoder{Key: beam.StringUTF8Coder{}, Value: beam.StringUTF8Coder{}}))
		triggered := beam.WindowInto(p, beam.DefaultWindowing().Triggering(beam.AfterCount{N: 100000}), words)
		grouped := beam.GroupByKey(p, triggered)
		formatted := beam.MapElements(p, "format", func(elem any) (any, error) {
			g := elem.(beam.Grouped)
			return []byte(fmt.Sprintf("%v=%d", g.Key, len(g.Values))), nil
		}, grouped, beam.WithCoder(beam.BytesCoder{}))
		beam.KafkaWrite(p, b, "counts", formatted, broker.ProducerConfig{})
		return p, nil
	}

	// Flink runner: stateful processing supported.
	p, err := build()
	if err != nil {
		return err
	}
	fc, err := flink.NewCluster(flink.ClusterConfig{})
	if err != nil {
		return err
	}
	fc.Start()
	defer fc.Stop()
	if _, err := flinkrunner.Run(p, flinkrunner.Config{Cluster: fc, Parallelism: 2}); err != nil {
		return err
	}
	n, err := b.RecordCount("counts")
	if err != nil {
		return err
	}
	fmt.Printf("\nflink runner grouped %d distinct words (stateful: supported)\n", n)

	// Spark runner: since the keyed micro-batch state path landed, the
	// same stateful pipeline runs here too — the paper-era capability
	// gap (ErrStatefulUnsupported) is gone.
	p2, err := build()
	if err != nil {
		return err
	}
	sc, err := spark.NewCluster(spark.ClusterConfig{})
	if err != nil {
		return err
	}
	sc.Start()
	defer sc.Stop()
	if _, err := sparkrunner.Run(p2, sparkrunner.Config{Cluster: sc}); err != nil {
		return err
	}
	n, err = b.RecordCount("counts")
	if err != nil {
		return err
	}
	fmt.Printf("spark runner grouped %d distinct words (stateful: now supported via the micro-batch state path)\n", n)
	return nil
}
