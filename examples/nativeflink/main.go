// Nativeflink: search-log analytics with the Flink engine's own
// DataStream API — the "native" side of the paper's comparison.
//
// The job reads search-log records, keeps entries where the user clicked
// a result, projects them to "userID<TAB>rank" pairs, and writes them to
// an output topic. It then prints the execution plan (which chains into
// a single task, cf. paper Figure 12) and per-operator record counters.
//
//	go run ./examples/nativeflink
package main

import (
	"fmt"
	"log"

	"beambench/internal/aol"
	"beambench/internal/broker"
	"beambench/internal/flink"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	b := broker.New()
	for _, topic := range []string{"searches", "clicks"} {
		if err := b.CreateTopic(topic, broker.TopicConfig{Partitions: 1}); err != nil {
			return err
		}
	}
	gen, err := aol.NewGenerator(aol.Config{Records: 25_000, Seed: 3, GrepHits: -1})
	if err != nil {
		return err
	}
	producer, err := b.NewProducer(broker.ProducerConfig{})
	if err != nil {
		return err
	}
	for {
		rec, ok := gen.Next()
		if !ok {
			break
		}
		if err := producer.Send("searches", nil, rec.AppendTSV(nil)); err != nil {
			return err
		}
	}
	if err := producer.Close(); err != nil {
		return err
	}

	cluster, err := flink.NewCluster(flink.ClusterConfig{})
	if err != nil {
		return err
	}
	cluster.Start()
	defer cluster.Stop()

	env := flink.NewEnvironment(cluster).SetParallelism(2)
	env.AddSource("searches", flink.KafkaSource(b, "searches", 0)).
		Filter("clicked", func(rec []byte) bool {
			parsed, err := aol.ParseTSV(string(rec))
			return err == nil && parsed.ItemRank >= 0
		}).
		Map("project", func(rec []byte) []byte {
			parsed, err := aol.ParseTSV(string(rec))
			if err != nil {
				return rec
			}
			return []byte(fmt.Sprintf("%s\t%d", parsed.UserID, parsed.ItemRank))
		}).
		AddSink("clicks", flink.KafkaSink(b, "clicks", broker.ProducerConfig{}))

	plan, err := env.ExecutionPlan()
	if err != nil {
		return err
	}
	fmt.Println("execution plan:")
	fmt.Print(plan)

	result, err := env.Execute("click-analytics")
	if err != nil {
		return err
	}
	fmt.Printf("\njob finished in %v as %d task(s)\n", result.Duration, result.Tasks)
	for _, op := range result.Operators {
		fmt.Printf("  %-10s in=%-6d out=%d\n", op.Name, op.RecordsIn, op.RecordsOut)
	}
	count, err := b.RecordCount("clicks")
	if err != nil {
		return err
	}
	fmt.Printf("clicked searches: %d of 25000\n", count)
	return nil
}
